// Resilient blocking client for the sharded analysis service
// (docs/SERVICE.md "Cluster supervision & multi-host"): routes requests
// over the consistent-hash ring with a per-shard circuit breaker
// (closed/open/half-open probes), decorrelated-jitter retry backoff,
// automatic failover to the next ring shard when a breaker opens — and
// automatic un-mark when the shard's probe succeeds, so keys re-route
// home to their warm cache — plus optional tail-latency hedging for
// idempotent requests (first response wins; the duplicate lands on the
// loser's content-addressed cache, so no work is ever double-counted
// into a response).
//
// Not thread-safe: one ShardClient per client thread. Used by
// chpl-uaf-client, the cluster chaos tests, and bench_cluster.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/address.h"
#include "src/net/backoff.h"
#include "src/net/breaker.h"
#include "src/net/hash_ring.h"

namespace cuaf::net {

/// One blocking NDJSON connection to a shard. Line-buffered reads so a
/// hedged race can poll two connections without losing bytes.
class ShardConnection {
 public:
  explicit ShardConnection(const Address& address);
  ~ShardConnection();

  ShardConnection(const ShardConnection&) = delete;
  ShardConnection& operator=(const ShardConnection&) = delete;

  /// Sends `line` plus the trailing newline (MSG_NOSIGNAL; EINTR-safe).
  void sendLine(const std::string& line);

  /// Blocks until one full response line is buffered and returns it
  /// (without the newline). Throws on EOF or read error.
  std::string readLine();

  /// True once a full line is buffered; waits up to `timeout_ms` for
  /// bytes, reading as they arrive. Never consumes the line.
  [[nodiscard]] bool waitReadable(std::uint64_t timeout_ms);

  [[nodiscard]] bool hasLine() const;

  /// One blocking read() appended to the buffer. Throws on EOF/error.
  void fillOnce();

  [[nodiscard]] int fd() const { return fd_; }

  std::string roundTrip(const std::string& request) {
    sendLine(request);
    return readLine();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// One blocking health probe: connect, send `{"op":"ping"}`, await the
/// ack — all within `timeout_ms`. Never throws; false on any failure.
[[nodiscard]] bool probeAddress(const Address& address,
                                std::uint64_t timeout_ms);

struct ShardClientOptions {
  unsigned retries = 0;               ///< extra attempts per shard
  std::uint64_t backoff_base_ms = 50;
  std::uint64_t backoff_cap_ms = 2000;
  std::uint64_t backoff_seed = 0;     ///< decorrelates concurrent clients
  std::uint64_t breaker_open_base_ms = 100;
  std::uint64_t breaker_open_cap_ms = 2000;
  std::uint64_t hedge_ms = 0;         ///< 0 disables hedging
  /// issueRouted keeps waiting for an open breaker's probe window up to
  /// this long when every shard is open, instead of failing immediately.
  /// 0 = fail as soon as all breakers are open (one pass).
  std::uint64_t route_budget_ms = 0;
};

class ShardClient {
 public:
  struct Counters {
    std::uint64_t requests = 0;      ///< round-trip attempts sent
    std::uint64_t retries = 0;       ///< same-shard retry attempts
    std::uint64_t failovers = 0;     ///< routed requests moved to another shard
    std::uint64_t breaker_opens = 0;
    std::uint64_t probes = 0;        ///< half-open probe attempts
    std::uint64_t hedges = 0;        ///< duplicate requests sent
    std::uint64_t hedge_wins = 0;    ///< races won by the backup shard
  };

  ShardClient(std::vector<Address> shards, ShardClientOptions options);

  /// Shards of `base_addr` ("path" or "host:port"): shardAddress(k) for
  /// k in [0, shards).
  [[nodiscard]] static std::vector<Address> addressesFor(
      const std::string& base_addr, std::size_t shards);

  [[nodiscard]] std::size_t shardCount() const { return ring_.shardCount(); }

  /// Shard currently owning `key` (breaker states refreshed first).
  [[nodiscard]] std::size_t route(std::uint64_t key);

  /// Shards whose breaker is not open right now, ascending.
  [[nodiscard]] std::vector<std::size_t> reachableShards();

  /// Round-trips on one specific shard with the retry/backoff policy:
  /// connection errors reconnect and, once the budget is spent, open the
  /// breaker and throw; transient "overloaded"/"worker_crashed" responses
  /// retry without tripping the breaker (the daemon is alive).
  std::string issueOn(std::size_t shard, const std::string& request);

  /// Round-trips on the shard owning `key`, failing over along the ring
  /// when breakers open and hedging after hedge_ms when enabled. Throws
  /// only when every shard's breaker is open past route_budget_ms.
  std::string issueRouted(std::uint64_t key, const std::string& request);

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] CircuitBreaker::State breakerState(std::size_t shard) const {
    return breakers_[shard].state(std::chrono::steady_clock::now());
  }

  /// "status":"ok" never appears inside a response string literal
  /// (quotes are escaped there), so a substring probe is reliable.
  [[nodiscard]] static bool responseOk(const std::string& response);

  /// Error codes worth retrying in place: the condition is transient by
  /// design (admission control sheds load; the daemon respawns a crashed
  /// worker).
  [[nodiscard]] static bool responseRetryable(const std::string& response);

 private:
  using TimePoint = CircuitBreaker::TimePoint;

  /// Re-marks ring liveness from breaker states: open = dead.
  void refreshRing(TimePoint now);
  std::string attemptOnce(std::size_t shard, const std::string& request);
  std::string issueHedged(std::size_t primary, std::uint64_t key,
                          const std::string& request);
  void ensureConn(std::size_t shard);
  void dropConn(std::size_t shard);

  std::vector<Address> addresses_;
  ShardClientOptions options_;
  HashRing ring_;
  std::vector<CircuitBreaker> breakers_;
  std::vector<std::unique_ptr<ShardConnection>> conns_;
  DecorrelatedJitter retry_jitter_;
  Counters counters_;
};

}  // namespace cuaf::net
