file(REMOVE_RECURSE
  "CMakeFiles/pps_test.dir/pps_test.cpp.o"
  "CMakeFiles/pps_test.dir/pps_test.cpp.o.d"
  "pps_test"
  "pps_test.pdb"
  "pps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
