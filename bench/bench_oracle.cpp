// Oracle cost & quality: schedules explored and wall time of the dynamic
// use-after-free oracle vs program size, plus exhaustive-vs-budgeted
// agreement (does a truncated DFS + heuristics still find every UAF the
// exhaustive exploration finds on small programs?).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_util.h"
#include "src/analysis/pipeline.h"
#include "src/runtime/explore.h"

namespace {

cuaf::rt::ExploreResult runOracle(const std::string& src,
                                  cuaf::rt::ExploreOptions opts) {
  cuaf::Pipeline pipeline;
  if (!pipeline.runSource("bench.chpl", src)) std::abort();
  return cuaf::rt::exploreAll(*pipeline.module(), *pipeline.program(), opts);
}

void BM_OracleUnsafe(benchmark::State& state) {
  std::string src = cuaf::bench::unsafeProgram(static_cast<int>(state.range(0)));
  cuaf::rt::ExploreOptions opts;
  std::size_t schedules = 0;
  for (auto _ : state) {
    cuaf::rt::ExploreResult r = runOracle(src, opts);
    schedules = r.schedules_run;
    benchmark::DoNotOptimize(r.uaf_sites);
  }
  state.counters["schedules"] = static_cast<double>(schedules);
}

void BM_OracleHandshake(benchmark::State& state) {
  std::string src = cuaf::bench::handshakeProgram(static_cast<int>(state.range(0)));
  cuaf::rt::ExploreOptions opts;
  std::size_t schedules = 0;
  for (auto _ : state) {
    cuaf::rt::ExploreResult r = runOracle(src, opts);
    schedules = r.schedules_run;
    benchmark::DoNotOptimize(r.uaf_sites);
  }
  state.counters["schedules"] = static_cast<double>(schedules);
}

}  // namespace

BENCHMARK(BM_OracleUnsafe)->DenseRange(1, 4);
BENCHMARK(BM_OracleHandshake)->DenseRange(1, 4);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::cout << "\n=== Oracle: budgeted vs exhaustive agreement ===\n";
  std::cout << "tasks  uaf(exhaustive)  uaf(budget=50)  schedules(ex)  schedules(50)\n";
  for (int tasks = 1; tasks <= 4; ++tasks) {
    std::string src = cuaf::bench::unsafeProgram(tasks);
    cuaf::rt::ExploreOptions full;
    full.max_schedules = 100000;
    cuaf::rt::ExploreOptions budget;
    budget.max_schedules = 50;
    budget.random_schedules = 16;
    cuaf::rt::ExploreResult ex = runOracle(src, full);
    cuaf::rt::ExploreResult bu = runOracle(src, budget);
    std::printf("%5d  %15zu  %14zu  %13zu  %13zu\n", tasks,
                ex.uaf_sites.size(), bu.uaf_sites.size(), ex.schedules_run,
                bu.schedules_run);
  }
  return 0;
}
