# Empty dependencies file for paper_fig1.
# This may be replaced when dependencies are built.
