# Empty compiler generated dependencies file for cuaf_lexer.
# This may be replaced when dependencies are built.
