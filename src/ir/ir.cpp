#include "src/ir/ir.h"

namespace cuaf::ir {

bool containsConcurrencyEvent(const Stmt& stmt, const SemaModule& sema) {
  switch (stmt.kind) {
    case StmtKind::SyncRead:
    case StmtKind::SyncWrite:
    case StmtKind::BarrierWait:
    case StmtKind::Begin:
      return true;
    case StmtKind::Call:
      return stmt.callee.valid() && sema.proc(stmt.callee).is_nested;
    default:
      break;
  }
  for (const auto& s : stmt.body) {
    if (containsConcurrencyEvent(*s, sema)) return true;
  }
  for (const auto& s : stmt.else_body) {
    if (containsConcurrencyEvent(*s, sema)) return true;
  }
  return false;
}

}  // namespace cuaf::ir
