// Public entry point of the happens-before UAF oracle (docs/HB_ORACLE.md).
//
// Unlike the enumerating oracle (src/runtime/explore.h), which must visit
// many interleavings to witness a bad one, the HB oracle extracts a
// definitive per-schedule verdict from *each* execution: a vector-clock
// detector rides along as an ExecObserver and flags every access site the
// run's happens-before relation fails to order before its cell's free. A
// small schedule sample (default run + delay-victim sweep + random runs)
// then substitutes for full enumeration at a fraction of the cost.
#pragma once

#include <cstdint>
#include <vector>

#include "src/runtime/explore.h"
#include "src/support/deadline.h"

namespace cuaf::hb {

struct Options {
  /// Random schedules sampled per config combo (each yields a full verdict).
  std::size_t random_schedules = 64;
  /// Delay-victim schedules per combo (victims 1..victim_sweep).
  std::size_t victim_sweep = 16;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  std::size_t max_steps_per_run = 50000;
  /// Upper bound on enumerated config-value combinations.
  std::size_t max_config_combos = 8;
  /// Checked between schedules (site "hb.sample").
  Deadline deadline;
};

struct Result {
  /// Distinct (location, variable) sites flagged by the detector in at
  /// least one sampled schedule, in deterministic discovery order.
  std::vector<rt::UafEvent> sites;
  std::size_t schedules_run = 0;
  std::size_t deadlock_schedules = 0;
  /// A run used a feature the interpreter cannot model.
  bool unsupported = false;
  /// Non-None when the deadline cut sampling short.
  StopReason stopped = StopReason::None;

  [[nodiscard]] bool sawUafAt(SourceLoc loc) const;
};

/// Samples schedules of `entry` under every enumerated config combo, running
/// the vector-clock detector on each; returns the union of flagged sites.
Result check(const ir::Module& module, const Program& program, ProcId entry,
             const Options& options = {});

/// Checks every top-level zero-parameter procedure and unions the results.
Result checkAll(const ir::Module& module, const Program& program,
                const Options& options = {});

}  // namespace cuaf::hb
