file(REMOVE_RECURSE
  "libcuaf_analysis.a"
)
