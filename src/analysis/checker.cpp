#include "src/analysis/checker.h"

#include <algorithm>

namespace cuaf {

namespace {

UafWarning makeWarning(const ccfg::Graph& graph, const ccfg::OvUse& access) {
  UafWarning w;
  w.var_name = graph.varName(access.var);
  w.access_loc = access.loc;
  w.decl_loc = graph.varInfo(access.var).loc;
  w.task_loc = graph.task(access.task).loc;
  w.is_write = access.is_write;
  return w;
}

void fillStats(ProcAnalysis& pa, const ccfg::Graph& graph) {
  pa.ccfg_nodes = graph.nodeCount();
  pa.ccfg_tasks = graph.taskCount();
  pa.pruned_tasks = graph.stats().pruned_tasks;
  pa.ov_accesses = graph.accessCount();
}

/// True if the lowered body contains a begin anywhere (needed because an
/// unsupported-loop graph stops before walking the loop's begin tasks).
bool irHasBegin(const ir::Stmt& stmt) {
  if (stmt.kind == ir::StmtKind::Begin) return true;
  for (const auto& s : stmt.body) {
    if (irHasBegin(*s)) return true;
  }
  for (const auto& s : stmt.else_body) {
    if (irHasBegin(*s)) return true;
  }
  return false;
}

void emitWarnings(const ProcAnalysis& pa, DiagnosticEngine& diags) {
  for (const UafWarning& w : pa.warnings) {
    diags.warning(w.access_loc, "uaf", w.message());
  }
}

}  // namespace

const char* oracleVerdictName(OracleVerdict v) {
  switch (v) {
    case OracleVerdict::Unclassified: return "unclassified";
    case OracleVerdict::Safe: return "safe";
    case OracleVerdict::Uaf: return "uaf";
  }
  return "?";
}

std::string UafWarning::message() const {
  std::string out = "potential use-after-free: outer variable '";
  out += var_name;
  out += "' may be accessed after its scope has exited (";
  out += is_write ? "write" : "read";
  out += " in a begin task lacking synchronization with the variable's "
         "parent scope)";
  return out;
}

std::size_t AnalysisResult::warningCount() const {
  std::size_t n = 0;
  for (const ProcAnalysis& p : procs) n += p.warnings.size();
  return n;
}

bool AnalysisResult::hasBegin() const {
  return std::any_of(procs.begin(), procs.end(),
                     [](const ProcAnalysis& p) { return p.has_begin; });
}

std::vector<const UafWarning*> AnalysisResult::allWarnings() const {
  std::vector<const UafWarning*> out;
  for (const ProcAnalysis& p : procs) {
    for (const UafWarning& w : p.warnings) out.push_back(&w);
  }
  return out;
}

AnalysisResult UseAfterFreeChecker::run(const ir::Module& module,
                                        DiagnosticEngine& diags) const {
  return run(module, diags, nullptr);
}

AnalysisResult UseAfterFreeChecker::run(const ir::Module& module,
                                        DiagnosticEngine& diags,
                                        const Program* program) const {
  AnalysisResult result;
  const SemaModule& sema = *module.sema;

  // Witness extraction needs the PPS trace: the sink's parent chain is the
  // counterexample serialization.
  pps::Options pps_options = options_.pps;
  if (options_.witness.enabled) pps_options.record_trace = true;

  // The top-level deadline drives every phase.
  ccfg::BuildOptions build_options = options_.build;
  build_options.deadline = options_.deadline;
  pps_options.deadline = options_.deadline;
  witness::Options witness_options = options_.witness;
  witness_options.deadline = options_.deadline;

  auto stopAt = [&result](StopReason stop, const char* phase) {
    result.stopped = stop;
    result.stop_phase = phase;
  };

  for (const auto& proc : module.procs) {
    if (proc->is_nested) continue;  // analyzed via inlining at call sites
    if (StopReason stop = options_.deadline.check("checker.proc");
        stop != StopReason::None) {
      stopAt(stop, "checker");
      break;
    }

    ProcAnalysis pa;
    pa.proc = proc->id;
    pa.proc_name = std::string(sema.interner().text(proc->name));

    auto graph = ccfg::buildGraph(module, proc->id, diags, build_options);
    pa.has_begin = graph->taskCount() > 1 || irHasBegin(*proc->body);
    fillStats(pa, *graph);

    if (graph->stopped() != StopReason::None) {
      stopAt(graph->stopped(), "ccfg");
      result.procs.push_back(std::move(pa));
      break;
    }
    if (graph->unsupported()) {
      pa.skipped_unsupported = true;
      result.procs.push_back(std::move(pa));
      continue;
    }

    bool proc_stopped = false;
    if (pa.has_begin &&
        (graph->accessCount() > 0 ||
         (options_.pps.report_deadlocks && !graph->syncVars().empty()))) {
      pps::Result pps_result = pps::explore(*graph, pps_options);
      pa.pps_states = pps_result.states_generated;
      pa.pps_merged = pps_result.states_merged;
      pa.deadlocks = pps_result.deadlock_count;
      for (AccessId a : pps_result.unsafe) {
        pa.warnings.push_back(makeWarning(*graph, graph->access(a)));
      }
      if (pps_result.stopped != StopReason::None) {
        // Keep the partial warnings: everything found before the cut is real.
        stopAt(pps_result.stopped, "pps");
        proc_stopped = true;
      } else if (options_.witness.enabled) {
        pa.witnesses = witness::buildWitnesses(*graph, pps_result, program,
                                               witness_options);
        for (const witness::Witness& w : pa.witnesses) {
          if (w.stopped != StopReason::None) {
            stopAt(w.stopped, "witness");
            proc_stopped = true;
            break;
          }
        }
      }
      for (NodeId n : pps_result.deadlocked_nodes) {
        const ccfg::Node& node = graph->node(n);
        if (!node.sync) continue;
        pa.deadlock_points.push_back(node.sync->loc);
        diags.warning(node.sync->loc, "deadlock",
                      "synchronization on '" + graph->varName(node.sync->var) +
                          "' can never complete in at least one execution "
                          "(potential deadlock point)");
      }
      if (options_.keep_artifacts) {
        pa.pps_result = std::make_unique<pps::Result>(std::move(pps_result));
      }
    }
    emitWarnings(pa, diags);
    if (options_.keep_artifacts) pa.graph = std::move(graph);
    result.procs.push_back(std::move(pa));
    if (proc_stopped) break;
  }
  return result;
}

AnalysisResult runMhpBaseline(const ir::Module& module,
                              DiagnosticEngine& diags) {
  AnalysisResult result;
  const SemaModule& sema = *module.sema;

  for (const auto& proc : module.procs) {
    if (proc->is_nested) continue;

    ProcAnalysis pa;
    pa.proc = proc->id;
    pa.proc_name = std::string(sema.interner().text(proc->name));

    // The baseline understands sync-block fencing (rules A–D and the
    // synced-scope root rule run during construction) but not point-to-point
    // synchronization: every access those rules cannot discharge is flagged.
    auto graph = ccfg::buildGraph(module, proc->id, diags, ccfg::BuildOptions{});
    pa.has_begin = graph->taskCount() > 1 || irHasBegin(*proc->body);
    fillStats(pa, *graph);

    if (graph->unsupported()) {
      pa.skipped_unsupported = true;
      result.procs.push_back(std::move(pa));
      continue;
    }
    for (const ccfg::OvUse& a : graph->accesses()) {
      if (!a.pre_safe) pa.warnings.push_back(makeWarning(*graph, a));
    }
    result.procs.push_back(std::move(pa));
  }
  return result;
}

}  // namespace cuaf
