// Minimal type system for the mini-Chapel subset.
//
// Types are value semantics: a base scalar type optionally wrapped by one of
// Chapel's concurrency qualifiers (`sync`, `single`, `atomic`).
#pragma once

#include <string>

namespace cuaf {

enum class BaseType { Int, Bool, Real, String, Void };

/// Concurrency wrapper on a variable type.
enum class ConcKind {
  None,    ///< plain data variable
  Sync,    ///< `sync T`  — readFE empties, writeEF fills
  Single,  ///< `single T` — readFF leaves full, single write
  Atomic,  ///< `atomic T` — not modeled by the static analysis (paper §IV-A)
  Barrier, ///< `barrier` — phaser-style rendezvous (arXiv:1708.02801)
};

struct Type {
  BaseType base = BaseType::Int;
  ConcKind conc = ConcKind::None;

  [[nodiscard]] bool isSyncLike() const {
    return conc == ConcKind::Sync || conc == ConcKind::Single;
  }
  [[nodiscard]] bool isAtomic() const { return conc == ConcKind::Atomic; }
  [[nodiscard]] bool isBarrier() const { return conc == ConcKind::Barrier; }

  friend bool operator==(const Type&, const Type&) = default;
};

[[nodiscard]] std::string typeName(const Type& t);
[[nodiscard]] std::string_view baseTypeName(BaseType b);

}  // namespace cuaf
