#include "src/corpus/shape.h"

#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/lexer/lexer.h"
#include "src/support/diagnostics.h"
#include "src/support/source_manager.h"

namespace cuaf::corpus {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  h = (h ^ v) * kFnvPrime;
}

}  // namespace

std::uint64_t shapeHash(const std::string& source) {
  SourceManager sm;
  DiagnosticEngine diags;
  FileId file = sm.addBuffer("<shape>", source);
  Lexer lexer(sm, file, diags);

  std::unordered_map<std::string_view, std::uint64_t> names;
  std::uint64_t h = kFnvOffset;
  for (Token tok = lexer.next(); !tok.is(TokKind::Eof); tok = lexer.next()) {
    mix(h, static_cast<std::uint64_t>(tok.kind));
    switch (tok.kind) {
      case TokKind::Identifier: {
        // First-occurrence numbering: `x` and `y` are interchangeable, but
        // the aliasing pattern (which sites name the *same* variable) is
        // structure and stays in the hash.
        auto [it, inserted] = names.try_emplace(tok.text, names.size());
        mix(h, it->second);
        break;
      }
      case TokKind::IntLit:
      case TokKind::RealLit:
      case TokKind::StringLit:
        break;  // value canonicalized away; the kind was already mixed
      default:
        break;  // keywords/punctuation carry no payload beyond the kind
    }
  }
  return h;
}

}  // namespace cuaf::corpus
