#include "src/runtime/interp.h"

#include <cassert>

namespace cuaf::rt {

Interp::Interp(const ir::Module& module, const Program& program,
               const ConfigAssignment* configs)
    : module_(module), sema_(*module.sema), program_(program),
      configs_(configs) {}

// ---------------------------------------------------------------------------
// Setup
// ---------------------------------------------------------------------------

Value Interp::defaultValue(const Type& type) const {
  switch (type.base) {
    case BaseType::Int: return std::int64_t{0};
    case BaseType::Real: return 0.0;
    case BaseType::Bool: return false;
    case BaseType::String: return std::string{};
    case BaseType::Void: return std::int64_t{0};
  }
  return std::int64_t{0};
}

void Interp::start(ProcId entry) {
  auto root = std::make_unique<TaskCtx>();
  root->id = next_task_id_;
  next_task_id_ = TaskId(next_task_id_.index() + 1);

  // Global frame: config variables.
  global_env_ = std::make_shared<EnvNode>();
  for (const auto& cfg : program_.configs) {
    if (!cfg->resolved.valid()) continue;
    const VarInfo& info = sema_.var(cfg->resolved);
    Value v = defaultValue(info.type);
    if (cfg->init) {
      // Config initializers are literal-ish; evaluate with a throwaway task.
      TaskCtx tmp;
      tmp.id = root->id;
      tmp.env = global_env_;
      v = eval(tmp, *cfg->init);
    }
    if (configs_ != nullptr) {
      auto it = configs_->find(cfg->resolved);
      if (it != configs_->end()) v = it->second;
    }
    CellPtr cell = makeCell(cfg->resolved, std::move(v), root->id, false);
    global_env_->bindings.emplace_back(cfg->resolved, cell);
  }

  const ir::Proc* proc = module_.proc(entry);
  assert(proc != nullptr);

  // Synthetic caller frame: parameter cells die when the entry call returns.
  auto env = std::make_shared<EnvNode>();
  env->parent = global_env_;
  root->env = env;

  ExecFrame call;
  call.kind = ExecFrame::Kind::CallBoundary;
  static const std::vector<ir::StmtPtr> kEmpty;
  call.stmts = &kEmpty;
  call.saved_env = global_env_;
  for (const Param& p : proc->decl->params) {
    if (!p.resolved.valid()) continue;
    const VarInfo& info = sema_.var(p.resolved);
    CellPtr cell =
        makeCell(p.resolved, defaultValue(info.type), root->id,
                 info.type.isSyncLike() || info.type.isBarrier());
    if (info.type.isBarrier()) {
      cell->barrier = std::make_shared<BarrierState>();
      cell->barrier->registered.push_back(root->id.index());
      root->barrier_cells.push_back(cell);
    }
    env->bindings.emplace_back(p.resolved, cell);
    call.owned.push_back(cell);
  }
  root->frames.push_back(std::move(call));

  tasks_.push_back(std::move(root));
  // Enter the procedure body (a Block stmt).
  TaskCtx& t = *tasks_[0];
  execStmt(t, *proc->body);
}

// ---------------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------------

CellPtr Interp::makeCell(VarId var, Value v, TaskId creator, bool is_sync) {
  auto cell = std::make_shared<Cell>();
  cell->value = std::move(v);
  cell->var = var;
  cell->creator = creator;
  cell->is_sync = is_sync;
  cell->uid = next_cell_uid_++;
  return cell;
}

void Interp::bind(TaskCtx& task, VarId var, CellPtr cell) {
  // Bindings attach to the task's current (mutable) top env node.
  task.env->bindings.emplace_back(var, std::move(cell));
}

CellPtr Interp::lookup(TaskCtx& task, VarId var) {
  return task.env ? task.env->lookup(var) : nullptr;
}

void Interp::recordAccess(TaskCtx& task, const CellPtr& cell, SourceLoc loc,
                          bool is_write) {
  if (cell == nullptr || cell->is_sync) return;
  if (observer_ != nullptr) {
    observer_->onAccess(task.id.index(), cell->uid, cell->var, loc, is_write,
                        cell->alive);
  }
  if (cell->alive) return;
  events_.push_back(UafEvent{loc, cell->var, is_write});
}

void Interp::notifySyncOp(TaskCtx& task, const CellPtr& cell, SourceLoc loc) {
  if (observer_ != nullptr && cell != nullptr) {
    observer_->onSyncOp(task.id.index(), cell->uid, loc);
  }
}

Value Interp::readCell(TaskCtx& task, VarId var, SourceLoc loc) {
  CellPtr cell = lookup(task, var);
  if (cell == nullptr) return std::int64_t{0};
  recordAccess(task, cell, loc, false);
  return cell->value;
}

void Interp::writeCell(TaskCtx& task, VarId var, Value v, SourceLoc loc) {
  CellPtr cell = lookup(task, var);
  if (cell == nullptr) return;
  recordAccess(task, cell, loc, true);
  cell->value = std::move(v);
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Value Interp::eval(TaskCtx& task, const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::IntLit:
      return static_cast<const IntLitExpr&>(expr).value;
    case ExprKind::RealLit:
      return static_cast<const RealLitExpr&>(expr).value;
    case ExprKind::BoolLit:
      return static_cast<const BoolLitExpr&>(expr).value;
    case ExprKind::StringLit:
      return static_cast<const StringLitExpr&>(expr).value;
    case ExprKind::Ident: {
      const auto& e = static_cast<const IdentExpr&>(expr);
      // Sync reads were hoisted by lowering; reading here is non-blocking.
      return readCell(task, e.resolved, e.loc);
    }
    case ExprKind::Binary:
      return evalBinary(task, static_cast<const BinaryExpr&>(expr));
    case ExprKind::Unary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      Value v = eval(task, *e.operand);
      if (e.op == UnaryOp::Not) return !asBool(v);
      if (std::holds_alternative<double>(v)) return -asReal(v);
      return -asInt(v);
    }
    case ExprKind::PostIncDec: {
      const auto& e = static_cast<const PostIncDecExpr&>(expr);
      Value old = readCell(task, e.resolved, e.loc);
      std::int64_t delta = e.is_increment ? 1 : -1;
      writeCell(task, e.resolved, asInt(old) + delta, e.loc);
      return old;
    }
    case ExprKind::Call: {
      const auto& e = static_cast<const CallExpr&>(expr);
      if (e.is_builtin) {
        for (const auto& a : e.args) eval(task, *a);
        ++writeln_count_;
        return std::int64_t{0};
      }
      return callInline(task, e);
    }
    case ExprKind::MethodCall: {
      const auto& e = static_cast<const MethodCallExpr&>(expr);
      CellPtr cell = lookup(task, e.resolved_receiver);
      std::string_view m = sema_.interner().text(e.method);
      if (cell == nullptr) return std::int64_t{0};
      // Sync/atomic method calls are ordering operations for observers
      // (conservative: every touch of a concurrency-typed cell both
      // releases and acquires; see src/hb/detector.h).
      bool conc = cell->is_sync ||
                  (e.resolved_receiver.valid() &&
                   sema_.var(e.resolved_receiver).type.isAtomic());
      if (m == "isFull") {
        if (conc) notifySyncOp(task, cell, e.loc);
        return cell->sync_state == SyncState::Full;
      }
      if (m == "read") {
        recordAccess(task, cell, e.loc, false);
        if (conc) notifySyncOp(task, cell, e.loc);
        return cell->value;
      }
      if (m == "fetchAdd" || m == "add" || m == "sub" || m == "exchange" ||
          m == "write") {
        Value arg = e.args.empty() ? Value{std::int64_t{0}}
                                   : eval(task, *e.args[0]);
        recordAccess(task, cell, e.loc, true);
        Value old = cell->value;
        if (m == "write" || m == "exchange") {
          cell->value = arg;
        } else if (m == "sub") {
          cell->value = asInt(old) - asInt(arg);
        } else {
          cell->value = asInt(old) + asInt(arg);
        }
        if (conc) notifySyncOp(task, cell, e.loc);
        return old;
      }
      // waitFor/readFE/readFF in expression position: the blocking part is
      // handled at statement level; read the current value.
      recordAccess(task, cell, e.loc, false);
      if (conc) notifySyncOp(task, cell, e.loc);
      return cell->value;
    }
  }
  return std::int64_t{0};
}

Value Interp::evalBinary(TaskCtx& task, const BinaryExpr& e) {
  if (e.op == BinaryOp::And) {
    return asBool(eval(task, *e.lhs)) && asBool(eval(task, *e.rhs));
  }
  if (e.op == BinaryOp::Or) {
    return asBool(eval(task, *e.lhs)) || asBool(eval(task, *e.rhs));
  }
  Value l = eval(task, *e.lhs);
  Value r = eval(task, *e.rhs);
  bool any_string = std::holds_alternative<std::string>(l) ||
                    std::holds_alternative<std::string>(r);
  bool any_real =
      std::holds_alternative<double>(l) || std::holds_alternative<double>(r);
  switch (e.op) {
    case BinaryOp::Add:
      if (any_string) return asString(l) + asString(r);
      if (any_real) return asReal(l) + asReal(r);
      return asInt(l) + asInt(r);
    case BinaryOp::Sub:
      if (any_real) return asReal(l) - asReal(r);
      return asInt(l) - asInt(r);
    case BinaryOp::Mul:
      if (any_real) return asReal(l) * asReal(r);
      return asInt(l) * asInt(r);
    case BinaryOp::Div:
      if (any_real) {
        double d = asReal(r);
        return d == 0.0 ? 0.0 : asReal(l) / d;
      }
      return asInt(r) == 0 ? std::int64_t{0} : asInt(l) / asInt(r);
    case BinaryOp::Mod:
      return asInt(r) == 0 ? std::int64_t{0} : asInt(l) % asInt(r);
    case BinaryOp::Eq:
      if (any_string) return asString(l) == asString(r);
      return asReal(l) == asReal(r);
    case BinaryOp::Ne:
      if (any_string) return asString(l) != asString(r);
      return asReal(l) != asReal(r);
    case BinaryOp::Lt:
      if (any_string) return asString(l) < asString(r);
      return asReal(l) < asReal(r);
    case BinaryOp::Le:
      if (any_string) return asString(l) <= asString(r);
      return asReal(l) <= asReal(r);
    case BinaryOp::Gt:
      if (any_string) return asString(l) > asString(r);
      return asReal(l) > asReal(r);
    case BinaryOp::Ge:
      if (any_string) return asString(l) >= asString(r);
      return asReal(l) >= asReal(r);
    case BinaryOp::And:
    case BinaryOp::Or:
      break;  // handled above
  }
  return std::int64_t{0};
}

// Calls in expression position run synchronously; bodies with concurrency
// are not supported there (statement-position calls go through CallBoundary
// frames and support everything).
Value Interp::callInline(TaskCtx& task, const CallExpr& call) {
  if (!call.resolved_proc.valid()) return std::int64_t{0};
  const ir::Proc* proc = module_.proc(call.resolved_proc);
  if (proc == nullptr) return std::int64_t{0};

  EnvPtr saved = task.env;
  auto env = std::make_shared<EnvNode>();
  // Nested procs see their lexical environment; approximating with the
  // current env is correct for inline calls from the defining strand.
  env->parent = task.env;
  task.env = env;
  const auto& params = proc->decl->params;
  for (std::size_t i = 0; i < params.size() && i < call.args.size(); ++i) {
    const Param& p = params[i];
    if (!p.resolved.valid()) continue;
    bool by_ref =
        p.intent == ParamIntent::Ref || p.intent == ParamIntent::ConstRef;
    if (by_ref) {
      if (const auto* ident = call.args[i]->as<IdentExpr>()) {
        CellPtr cell = lookup(task, ident->resolved);
        if (cell) env->bindings.emplace_back(p.resolved, cell);
        continue;
      }
    }
    Value v = eval(task, *call.args[i]);
    env->bindings.emplace_back(
        p.resolved, makeCell(p.resolved, std::move(v), task.id, false));
  }

  bool returned = false;
  Value ret = std::int64_t{0};
  for (const auto& s : proc->body->body) {
    runInlineStmt(task, *s, returned, ret);
    if (returned) break;
  }
  task.env = saved;
  return ret;
}

void Interp::runInlineStmt(TaskCtx& task, const ir::Stmt& stmt, bool& returned,
                           Value& ret) {
  if (returned) return;
  switch (stmt.kind) {
    case ir::StmtKind::Block:
      for (const auto& s : stmt.body) {
        runInlineStmt(task, *s, returned, ret);
        if (returned) return;
      }
      break;
    case ir::StmtKind::DeclData:
    case ir::StmtKind::DeclSync: {
      const VarInfo& info = sema_.var(stmt.var);
      Value v = stmt.value != nullptr ? eval(task, *stmt.value)
                                      : defaultValue(info.type);
      CellPtr cell = makeCell(stmt.var, std::move(v), task.id,
                              info.type.isSyncLike());
      if (stmt.kind == ir::StmtKind::DeclSync && stmt.sync_init_full) {
        cell->sync_state = SyncState::Full;
      }
      task.env->bindings.emplace_back(stmt.var, cell);
      break;
    }
    case ir::StmtKind::Assign: {
      Value v = eval(task, *stmt.value);
      if (stmt.assign_op != AssignOp::Assign) {
        Value old = readCell(task, stmt.var, stmt.loc);
        switch (stmt.assign_op) {
          case AssignOp::AddAssign: v = asInt(old) + asInt(v); break;
          case AssignOp::SubAssign: v = asInt(old) - asInt(v); break;
          case AssignOp::MulAssign: v = asInt(old) * asInt(v); break;
          case AssignOp::Assign: break;
        }
      }
      writeCell(task, stmt.var, std::move(v), stmt.loc);
      break;
    }
    case ir::StmtKind::Eval:
      if (stmt.expr != nullptr) eval(task, *stmt.expr);
      break;
    case ir::StmtKind::If: {
      bool cond = stmt.expr != nullptr && asBool(eval(task, *stmt.expr));
      const auto& body = cond ? stmt.body : stmt.else_body;
      for (const auto& s : body) {
        runInlineStmt(task, *s, returned, ret);
        if (returned) return;
      }
      break;
    }
    case ir::StmtKind::Loop: {
      if (stmt.loop_has_sync_or_begin) {
        unsupported_ = true;
        return;
      }
      if (stmt.loop_is_for) {
        std::int64_t lo = asInt(eval(task, *stmt.loop_lo));
        std::int64_t hi = asInt(eval(task, *stmt.loop_hi));
        CellPtr idx = makeCell(stmt.loop_index, lo, task.id, false);
        task.env->bindings.emplace_back(stmt.loop_index, idx);
        for (std::int64_t i = lo; i <= hi && !returned; ++i) {
          idx->value = i;
          for (const auto& s : stmt.body) {
            runInlineStmt(task, *s, returned, ret);
            if (returned) break;
          }
        }
      } else {
        std::size_t guard = 0;
        while (!returned && stmt.expr != nullptr &&
               asBool(eval(task, *stmt.expr))) {
          for (const auto& s : stmt.body) {
            runInlineStmt(task, *s, returned, ret);
            if (returned) break;
          }
          if (++guard > 100000) {
            unsupported_ = true;
            break;
          }
        }
      }
      break;
    }
    case ir::StmtKind::Return:
      if (stmt.expr != nullptr) ret = eval(task, *stmt.expr);
      returned = true;
      break;
    case ir::StmtKind::Call: {
      // Re-synthesize a CallExpr-ish inline run: evaluate via callInline by
      // locating the AST call (stmt.args holds the argument expressions).
      const ir::Proc* proc = module_.proc(stmt.callee);
      if (proc == nullptr) break;
      // Reuse callInline machinery through a temporary environment.
      EnvPtr saved = task.env;
      auto env = std::make_shared<EnvNode>();
      env->parent = task.env;
      task.env = env;
      const auto& params = proc->decl->params;
      for (std::size_t i = 0; i < params.size() && i < stmt.args.size(); ++i) {
        const Param& p = params[i];
        if (!p.resolved.valid()) continue;
        bool by_ref =
            p.intent == ParamIntent::Ref || p.intent == ParamIntent::ConstRef;
        if (by_ref) {
          if (const auto* ident = stmt.args[i]->as<IdentExpr>()) {
            CellPtr cell = lookup(task, ident->resolved);
            if (cell) env->bindings.emplace_back(p.resolved, cell);
            continue;
          }
        }
        Value v = eval(task, *stmt.args[i]);
        env->bindings.emplace_back(
            p.resolved, makeCell(p.resolved, std::move(v), task.id, false));
      }
      bool sub_returned = false;
      Value sub_ret = std::int64_t{0};
      for (const auto& s : proc->body->body) {
        runInlineStmt(task, *s, sub_returned, sub_ret);
        if (sub_returned) break;
      }
      task.env = saved;
      break;
    }
    case ir::StmtKind::SyncRead:
    case ir::StmtKind::SyncWrite:
    case ir::StmtKind::Begin:
    case ir::StmtKind::SyncBlock:
    case ir::StmtKind::BarrierWait:
      unsupported_ = true;  // concurrency inside expression-position calls
      break;
    case ir::StmtKind::AtomicOp: {
      CellPtr cell = lookup(task, stmt.var);
      if (cell == nullptr) break;
      Value arg = stmt.value != nullptr ? eval(task, *stmt.value)
                                        : Value{std::int64_t{0}};
      recordAccess(task, cell, stmt.loc,
                   stmt.atomic_op != ir::AtomicOpKind::Read &&
                       stmt.atomic_op != ir::AtomicOpKind::WaitFor);
      switch (stmt.atomic_op) {
        case ir::AtomicOpKind::Write:
        case ir::AtomicOpKind::Exchange:
          cell->value = arg;
          break;
        case ir::AtomicOpKind::FetchAdd:
        case ir::AtomicOpKind::Add:
          cell->value = asInt(cell->value) + asInt(arg);
          break;
        case ir::AtomicOpKind::Sub:
          cell->value = asInt(cell->value) - asInt(arg);
          break;
        case ir::AtomicOpKind::WaitFor:
          // Cannot block inside an inline call; treat as unsupported if the
          // wait would not be satisfied immediately.
          if (asInt(cell->value) != asInt(arg)) unsupported_ = true;
          break;
        case ir::AtomicOpKind::Read:
          break;
      }
      notifySyncOp(task, cell, stmt.loc);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Stepping
// ---------------------------------------------------------------------------

bool Interp::allFinished() const {
  for (const auto& t : tasks_) {
    if (!t->finished) return false;
  }
  return true;
}

std::vector<Interp::RegionPtr> Interp::activeRegions(
    const TaskCtx& task) const {
  std::vector<RegionPtr> regions = task.inherited_regions;
  for (const ExecFrame& f : task.frames) {
    if (f.kind == ExecFrame::Kind::SyncRegion && f.sync_region) {
      regions.push_back(f.sync_region);
    }
  }
  return regions;
}

void Interp::pushBody(TaskCtx& task, const std::vector<ir::StmtPtr>& stmts,
                      ExecFrame::Kind kind) {
  ExecFrame f;
  f.kind = kind;
  f.stmts = &stmts;
  f.saved_env = task.env;
  if (kind == ExecFrame::Kind::Block) {
    auto env = std::make_shared<EnvNode>();
    env->parent = task.env;
    task.env = env;
  }
  task.frames.push_back(std::move(f));
}

void Interp::killOwned(TaskCtx& task, ExecFrame& frame) {
  for (const CellPtr& cell : frame.owned) {
    if (cell->is_sync) continue;
    if (cell->alive) {
      cell->alive = false;
      if (observer_ != nullptr) observer_->onFree(task.id.index(), cell->uid);
    }
  }
  frame.owned.clear();
}

void Interp::finishTask(TaskCtx& task) {
  task.finished = true;
  if (observer_ != nullptr) {
    std::vector<std::uint32_t> region_ids;
    region_ids.reserve(task.inherited_regions.size());
    for (const RegionPtr& region : task.inherited_regions) {
      if (region) region_ids.push_back(region->id);
    }
    observer_->onTaskEnd(task.id.index(), region_ids);
  }
  for (const RegionPtr& region : task.inherited_regions) {
    if (region) --region->outstanding;
  }
}

StepResult Interp::popFrame(TaskCtx& task) {
  ExecFrame& top = task.frames.back();
  switch (top.kind) {
    case ExecFrame::Kind::LoopWhile: {
      if (!task.returning && top.loop->expr != nullptr &&
          asBool(eval(task, *top.loop->expr))) {
        killOwned(task, top);  // per-iteration locals die each iteration
        top.index = 0;
        return StepResult::Progressed;
      }
      break;
    }
    case ExecFrame::Kind::LoopFor: {
      if (!task.returning && top.for_i < top.for_hi) {
        ++top.for_i;
        if (top.for_cell) top.for_cell->value = top.for_i;
        killOwned(task, top);
        top.index = 0;
        return StepResult::Progressed;
      }
      break;
    }
    case ExecFrame::Kind::SyncRegion: {
      if (top.sync_region && top.sync_region->outstanding > 0) {
        return StepResult::Blocked;  // fence: wait for child tasks
      }
      if (top.sync_region && observer_ != nullptr) {
        observer_->onRegionClose(task.id.index(), top.sync_region->id);
      }
      break;
    }
    default:
      break;
  }

  killOwned(task, top);
  task.env = top.saved_env;
  bool was_call = top.kind == ExecFrame::Kind::CallBoundary;
  task.frames.pop_back();
  if (was_call) task.returning = false;
  if (task.frames.empty()) {
    finishTask(task);
    return StepResult::Finished;
  }
  return StepResult::Progressed;
}

bool Interp::barrierOthersArrived(const BarrierState& b,
                                  std::size_t self) const {
  for (std::size_t r : b.registered) {
    if (r == self) continue;
    if (r < tasks_.size() && tasks_[r]->finished) continue;
    if (std::find(b.arrived.begin(), b.arrived.end(), r) != b.arrived.end()) {
      continue;
    }
    // A task whose next step is its own wait on this barrier counts as
    // arrived: `arrived` is only recorded inside step(), and the scheduler
    // only steps a wait once the rendezvous is ready — without this, two
    // parked waiters would each wait for the other's arrival record and
    // every schedule would deadlock at the barrier. A task still carrying a
    // release marker from the previous rendezvous has not re-arrived.
    if (std::find(b.passed.begin(), b.passed.end(), r) == b.passed.end() &&
        taskAtBarrierWait(r, b)) {
      continue;
    }
    // A registered task that can no longer execute a wait on this barrier
    // is not a rendezvous participant (the static rule's "every non-group
    // head cannot reach a BarrierWait" release condition) — e.g. a sibling
    // task that inherited the barrier at spawn but never waits must not
    // hold the rendezvous hostage until it finishes.
    if (r < tasks_.size() && !taskMayReachBarrierWait(*tasks_[r], b)) {
      continue;
    }
    return false;
  }
  return true;
}

bool Interp::taskAtBarrierWait(std::size_t t, const BarrierState& b) const {
  if (t >= tasks_.size()) return false;
  const TaskCtx& task = *tasks_[t];
  if (task.finished || task.frames.empty()) return false;
  const ExecFrame& top = task.frames.back();
  if (task.returning || top.index >= top.stmts->size()) return false;
  const ir::Stmt& stmt = *top.stmts->at(top.index);
  if (stmt.kind != ir::StmtKind::BarrierWait) return false;
  CellPtr cell = task.env ? task.env->lookup(stmt.var) : nullptr;
  return cell != nullptr && cell->barrier.get() == &b;
}

bool Interp::taskMayReachBarrierWait(const TaskCtx& task,
                                     const BarrierState& b) const {
  for (const ExecFrame& f : task.frames) {
    if (f.stmts == nullptr) continue;
    // Loop frames may re-run their whole body on the back-edge.
    const bool loops = f.kind == ExecFrame::Kind::LoopFor ||
                       f.kind == ExecFrame::Kind::LoopWhile;
    if (stmtsMayWaitOn(*f.stmts, loops ? 0 : f.index, task, b, 0)) {
      return true;
    }
  }
  return false;
}

bool Interp::stmtsMayWaitOn(const std::vector<ir::StmtPtr>& stmts,
                            std::size_t from, const TaskCtx& task,
                            const BarrierState& b, int depth) const {
  if (depth > 16) return true;  // recursion guard: over-approximate
  for (std::size_t i = from; i < stmts.size(); ++i) {
    const ir::Stmt& s = *stmts[i];
    switch (s.kind) {
      case ir::StmtKind::BarrierWait: {
        CellPtr cell = task.env ? task.env->lookup(s.var) : nullptr;
        if (cell != nullptr && cell->barrier.get() == &b) return true;
        break;
      }
      case ir::StmtKind::Block:
      case ir::StmtKind::SyncBlock:
      case ir::StmtKind::Loop:
      // A nested begin's waits belong to the spawned task, but until the
      // spawn happens this task is the only handle on that future
      // participant — counting it keeps the rendezvous from firing before
      // the waiter exists.
      case ir::StmtKind::Begin:
        if (stmtsMayWaitOn(s.body, 0, task, b, depth + 1)) return true;
        break;
      case ir::StmtKind::If:
        if (stmtsMayWaitOn(s.body, 0, task, b, depth + 1)) return true;
        if (stmtsMayWaitOn(s.else_body, 0, task, b, depth + 1)) return true;
        break;
      case ir::StmtKind::Call: {
        const ir::Proc* callee = module_.proc(s.callee);
        if (callee != nullptr && callee->body != nullptr &&
            stmtsMayWaitOn(callee->body->body, 0, task, b, depth + 1)) {
          return true;
        }
        break;
      }
      default:
        break;
    }
  }
  return false;
}

bool Interp::usesCrossTask(TaskCtx& task,
                           const std::vector<ir::VarUse>& uses) {
  for (const ir::VarUse& u : uses) {
    CellPtr cell = lookup(task, u.var);
    if (cell != nullptr && !cell->is_sync && cell->creator != task.id) {
      return true;
    }
  }
  return false;
}

bool Interp::stmtVisible(TaskCtx& task, const ir::Stmt& stmt) {
  switch (stmt.kind) {
    case ir::StmtKind::SyncRead:
    case ir::StmtKind::SyncWrite:
    case ir::StmtKind::AtomicOp:
    case ir::StmtKind::Begin:
    case ir::StmtKind::BarrierWait:
      return true;
    default:
      return usesCrossTask(task, stmt.uses);
  }
}

bool Interp::nextStepVisible(std::size_t t) {
  TaskCtx& task = this->task(t);
  if (task.finished) return false;
  ExecFrame& top = task.frames.back();
  if (task.returning || top.index >= top.stmts->size()) {
    // Frame pop: visible when it kills live data cells, fences, or finishes
    // the task.
    if (top.kind == ExecFrame::Kind::SyncRegion) return true;
    if (task.frames.size() == 1) return true;  // finish
    for (const CellPtr& cell : top.owned) {
      if (!cell->is_sync && cell->alive) return true;
    }
    // Loop back-edges evaluate conditions that may read cross-task state.
    if ((top.kind == ExecFrame::Kind::LoopWhile) && top.loop != nullptr) {
      return usesCrossTask(task, top.loop->uses);
    }
    return false;
  }
  return stmtVisible(task, *top.stmts->at(top.index));
}

SourceLoc Interp::nextSyncLoc(std::size_t t) const {
  const TaskCtx& task = *tasks_[t];
  if (task.finished || task.frames.empty()) return SourceLoc{};
  const ExecFrame& top = task.frames.back();
  if (task.returning || top.index >= top.stmts->size()) return SourceLoc{};
  const ir::Stmt& stmt = *top.stmts->at(top.index);
  switch (stmt.kind) {
    case ir::StmtKind::SyncRead:
    case ir::StmtKind::SyncWrite:
    case ir::StmtKind::AtomicOp:
    case ir::StmtKind::BarrierWait:
      return stmt.loc;
    default:
      return SourceLoc{};
  }
}

bool Interp::canStep(std::size_t t) {
  TaskCtx& task = this->task(t);
  if (task.finished) return false;
  ExecFrame& top = task.frames.back();
  if (task.returning || top.index >= top.stmts->size()) {
    if (!task.returning && top.kind == ExecFrame::Kind::SyncRegion &&
        top.sync_region && top.sync_region->outstanding > 0) {
      return false;
    }
    return true;
  }
  const ir::Stmt& stmt = *top.stmts->at(top.index);
  CellPtr cell;
  switch (stmt.kind) {
    case ir::StmtKind::SyncRead:
      cell = lookup(task, stmt.var);
      return cell == nullptr || cell->sync_state == SyncState::Full;
    case ir::StmtKind::SyncWrite:
      cell = lookup(task, stmt.var);
      return cell == nullptr || cell->sync_state == SyncState::Empty;
    case ir::StmtKind::AtomicOp:
      if (stmt.atomic_op == ir::AtomicOpKind::WaitFor) {
        cell = lookup(task, stmt.var);
        if (cell == nullptr) return true;
        std::int64_t expect =
            stmt.value != nullptr ? asInt(eval(task, *stmt.value)) : 0;
        return asInt(cell->value) == expect;
      }
      return true;
    case ir::StmtKind::BarrierWait: {
      cell = lookup(task, stmt.var);
      if (cell == nullptr || cell->barrier == nullptr) return true;
      const BarrierState& b = *cell->barrier;
      const std::size_t self = task.id.index();
      if (std::find(b.passed.begin(), b.passed.end(), self) !=
          b.passed.end()) {
        return true;  // released; the step consumes the marker
      }
      return barrierOthersArrived(b, self);
    }
    default:
      return true;
  }
}

void Interp::spawnTask(TaskCtx& parent, const ir::Stmt& stmt) {
  auto child = std::make_unique<TaskCtx>();
  child->id = next_task_id_;
  child->spawn_loc = stmt.loc;
  next_task_id_ = TaskId(next_task_id_.index() + 1);

  auto env = std::make_shared<EnvNode>();
  env->parent = parent.env;
  child->env = env;

  ExecFrame body;
  body.kind = ExecFrame::Kind::Block;  // task scope: shadows die at task end
  body.stmts = &stmt.body;
  body.saved_env = env;

  for (const CaptureInfo& cap : stmt.captures) {
    if (cap.intent == TaskIntent::In || cap.intent == TaskIntent::ConstIn) {
      // Copy at creation time: the read happens in the spawning strand.
      Value v = readCell(parent, cap.outer, cap.loc);
      CellPtr shadow = makeCell(cap.local, std::move(v), child->id, false);
      env->bindings.emplace_back(cap.local, shadow);
      body.owned.push_back(shadow);
    }
  }
  child->frames.push_back(std::move(body));

  child->inherited_regions = activeRegions(parent);
  for (const RegionPtr& region : child->inherited_regions) {
    if (region) ++region->outstanding;
  }
  // Phaser registration is inherited: the child joins every barrier its
  // parent is registered on and stays registered until it finishes
  // (finished tasks are skipped by the arrival check, so a child that never
  // waits cannot wedge a rendezvous forever).
  child->barrier_cells = parent.barrier_cells;
  for (const CellPtr& cell : child->barrier_cells) {
    if (cell->barrier != nullptr) {
      cell->barrier->registered.push_back(child->id.index());
    }
  }
  std::size_t child_index = child->id.index();
  tasks_.push_back(std::move(child));
  if (observer_ != nullptr) {
    observer_->onTaskSpawn(parent.id.index(), child_index);
  }
}

StepResult Interp::execStmt(TaskCtx& task, const ir::Stmt& stmt) {
  switch (stmt.kind) {
    case ir::StmtKind::Block: {
      pushBody(task, stmt.body, ExecFrame::Kind::Block);
      return StepResult::Progressed;
    }
    case ir::StmtKind::DeclData:
    case ir::StmtKind::DeclSync: {
      const VarInfo& info = sema_.var(stmt.var);
      Value v = stmt.value != nullptr ? eval(task, *stmt.value)
                                      : defaultValue(info.type);
      CellPtr cell = makeCell(stmt.var, std::move(v), task.id,
                              info.type.isSyncLike() || info.type.isBarrier());
      if (stmt.kind == ir::StmtKind::DeclSync && stmt.sync_init_full) {
        cell->sync_state = SyncState::Full;
      }
      if (info.type.isBarrier()) {
        cell->barrier = std::make_shared<BarrierState>();
        cell->barrier->registered.push_back(task.id.index());
        task.barrier_cells.push_back(cell);
      }
      bind(task, stmt.var, cell);
      // Attach to the nearest enclosing scope-owning frame.
      for (auto it = task.frames.rbegin(); it != task.frames.rend(); ++it) {
        if (it->kind == ExecFrame::Kind::Block ||
            it->kind == ExecFrame::Kind::CallBoundary ||
            it->kind == ExecFrame::Kind::LoopFor ||
            it->kind == ExecFrame::Kind::LoopWhile) {
          it->owned.push_back(cell);
          break;
        }
      }
      return StepResult::Progressed;
    }
    case ir::StmtKind::Assign: {
      Value v = eval(task, *stmt.value);
      if (stmt.assign_op != AssignOp::Assign) {
        Value old = readCell(task, stmt.var, stmt.loc);
        switch (stmt.assign_op) {
          case AssignOp::AddAssign: v = asInt(old) + asInt(v); break;
          case AssignOp::SubAssign: v = asInt(old) - asInt(v); break;
          case AssignOp::MulAssign: v = asInt(old) * asInt(v); break;
          case AssignOp::Assign: break;
        }
      }
      writeCell(task, stmt.var, std::move(v), stmt.loc);
      return StepResult::Progressed;
    }
    case ir::StmtKind::Eval: {
      if (stmt.expr != nullptr) eval(task, *stmt.expr);
      return StepResult::Progressed;
    }
    case ir::StmtKind::SyncRead: {
      CellPtr cell = lookup(task, stmt.var);
      if (cell == nullptr) return StepResult::Progressed;
      if (cell->sync_state != SyncState::Full) return StepResult::Blocked;
      if (stmt.sync_op == ir::SyncOpKind::ReadFE) {
        cell->sync_state = SyncState::Empty;
      }
      notifySyncOp(task, cell, stmt.loc);
      return StepResult::Progressed;
    }
    case ir::StmtKind::SyncWrite: {
      CellPtr cell = lookup(task, stmt.var);
      if (cell == nullptr) return StepResult::Progressed;
      if (cell->sync_state != SyncState::Empty) return StepResult::Blocked;
      Value v = stmt.value != nullptr ? eval(task, *stmt.value)
                                      : Value{true};
      cell->value = std::move(v);
      cell->sync_state = SyncState::Full;
      notifySyncOp(task, cell, stmt.loc);
      return StepResult::Progressed;
    }
    case ir::StmtKind::AtomicOp: {
      CellPtr cell = lookup(task, stmt.var);
      if (cell == nullptr) return StepResult::Progressed;
      Value arg = stmt.value != nullptr ? eval(task, *stmt.value)
                                        : Value{std::int64_t{0}};
      switch (stmt.atomic_op) {
        case ir::AtomicOpKind::WaitFor:
          recordAccess(task, cell, stmt.loc, false);
          if (asInt(cell->value) != asInt(arg)) return StepResult::Blocked;
          notifySyncOp(task, cell, stmt.loc);
          return StepResult::Progressed;
        case ir::AtomicOpKind::Write:
        case ir::AtomicOpKind::Exchange:
          recordAccess(task, cell, stmt.loc, true);
          cell->value = arg;
          notifySyncOp(task, cell, stmt.loc);
          return StepResult::Progressed;
        case ir::AtomicOpKind::FetchAdd:
        case ir::AtomicOpKind::Add:
          recordAccess(task, cell, stmt.loc, true);
          cell->value = asInt(cell->value) + asInt(arg);
          notifySyncOp(task, cell, stmt.loc);
          return StepResult::Progressed;
        case ir::AtomicOpKind::Sub:
          recordAccess(task, cell, stmt.loc, true);
          cell->value = asInt(cell->value) - asInt(arg);
          notifySyncOp(task, cell, stmt.loc);
          return StepResult::Progressed;
        case ir::AtomicOpKind::Read:
          recordAccess(task, cell, stmt.loc, false);
          notifySyncOp(task, cell, stmt.loc);
          return StepResult::Progressed;
      }
      return StepResult::Progressed;
    }
    case ir::StmtKind::BarrierWait: {
      CellPtr cell = lookup(task, stmt.var);
      if (cell == nullptr || cell->barrier == nullptr) {
        return StepResult::Progressed;
      }
      BarrierState& b = *cell->barrier;
      const std::size_t self = task.id.index();
      if (auto it = std::find(b.passed.begin(), b.passed.end(), self);
          it != b.passed.end()) {
        // Released by a rendezvous another task completed; consume it.
        b.passed.erase(it);
        return StepResult::Progressed;
      }
      if (std::find(b.arrived.begin(), b.arrived.end(), self) ==
          b.arrived.end()) {
        b.arrived.push_back(self);
      }
      if (!barrierOthersArrived(b, self)) return StepResult::Blocked;
      // Rendezvous: everyone at the barrier — recorded in `arrived` or
      // parked at their wait — is released. This task passes now, the rest
      // consume their release marker at their own wait sites. Registered
      // tasks that cannot reach a wait are not participants.
      std::vector<std::size_t> released;
      for (std::size_t r : b.registered) {
        if (r != self) {
          if (r >= tasks_.size() || tasks_[r]->finished) continue;
          const bool arrived = std::find(b.arrived.begin(), b.arrived.end(),
                                         r) != b.arrived.end();
          const bool parked =
              std::find(b.passed.begin(), b.passed.end(), r) ==
                  b.passed.end() &&
              taskAtBarrierWait(r, b);
          if (!arrived && !parked) continue;
        }
        released.push_back(r);
      }
      b.passed = released;
      b.passed.erase(std::find(b.passed.begin(), b.passed.end(), self));
      b.arrived.clear();
      ++b.generation;
      if (observer_ != nullptr) {
        observer_->onBarrierRelease(cell->uid, released, stmt.loc);
      }
      return StepResult::Progressed;
    }
    case ir::StmtKind::Begin: {
      spawnTask(task, stmt);
      return StepResult::Progressed;
    }
    case ir::StmtKind::SyncBlock: {
      ExecFrame f;
      f.kind = ExecFrame::Kind::SyncRegion;
      f.stmts = &stmt.body;
      f.saved_env = task.env;
      f.sync_region = std::make_shared<SyncRegionState>();
      f.sync_region->id = next_region_id_++;
      if (observer_ != nullptr) {
        observer_->onRegionOpen(task.id.index(), f.sync_region->id);
      }
      task.frames.push_back(std::move(f));
      return StepResult::Progressed;
    }
    case ir::StmtKind::If: {
      bool cond = stmt.expr != nullptr && asBool(eval(task, *stmt.expr));
      const auto& body = cond ? stmt.body : stmt.else_body;
      if (!body.empty()) pushBody(task, body, ExecFrame::Kind::Body);
      return StepResult::Progressed;
    }
    case ir::StmtKind::Loop: {
      if (stmt.loop_is_for) {
        std::int64_t lo = asInt(eval(task, *stmt.loop_lo));
        std::int64_t hi = asInt(eval(task, *stmt.loop_hi));
        if (lo > hi) return StepResult::Progressed;
        ExecFrame f;
        f.kind = ExecFrame::Kind::LoopFor;
        f.stmts = &stmt.body;
        f.saved_env = task.env;
        f.loop = &stmt;
        f.for_i = lo;
        f.for_hi = hi;
        auto env = std::make_shared<EnvNode>();
        env->parent = task.env;
        task.env = env;
        f.for_cell = makeCell(stmt.loop_index, lo, task.id, false);
        env->bindings.emplace_back(stmt.loop_index, f.for_cell);
        task.frames.push_back(std::move(f));
        return StepResult::Progressed;
      }
      if (stmt.expr == nullptr || !asBool(eval(task, *stmt.expr))) {
        return StepResult::Progressed;
      }
      ExecFrame f;
      f.kind = ExecFrame::Kind::LoopWhile;
      f.stmts = &stmt.body;
      f.saved_env = task.env;
      f.loop = &stmt;
      auto env = std::make_shared<EnvNode>();
      env->parent = task.env;
      task.env = env;
      task.frames.push_back(std::move(f));
      return StepResult::Progressed;
    }
    case ir::StmtKind::Return: {
      if (stmt.expr != nullptr) eval(task, *stmt.expr);
      task.returning = true;
      return StepResult::Progressed;
    }
    case ir::StmtKind::Call: {
      const ir::Proc* proc = module_.proc(stmt.callee);
      if (proc == nullptr) return StepResult::Progressed;

      ExecFrame call;
      call.kind = ExecFrame::Kind::CallBoundary;
      call.stmts = &proc->body->body;
      call.saved_env = task.env;

      auto env = std::make_shared<EnvNode>();
      // Nested procedures close over their lexical scope; calling from the
      // defining strand means the current env chain is a superset of it.
      env->parent = task.env;

      const auto& params = proc->decl->params;
      for (std::size_t i = 0; i < params.size() && i < stmt.args.size(); ++i) {
        const Param& p = params[i];
        if (!p.resolved.valid()) continue;
        bool by_ref =
            p.intent == ParamIntent::Ref || p.intent == ParamIntent::ConstRef;
        if (by_ref) {
          if (const auto* ident = stmt.args[i]->as<IdentExpr>()) {
            CellPtr cell = lookup(task, ident->resolved);
            if (cell) env->bindings.emplace_back(p.resolved, cell);
            continue;
          }
        }
        Value v = eval(task, *stmt.args[i]);
        CellPtr cell = makeCell(p.resolved, std::move(v), task.id, false);
        env->bindings.emplace_back(p.resolved, cell);
        call.owned.push_back(cell);
      }
      task.env = env;
      task.frames.push_back(std::move(call));
      return StepResult::Progressed;
    }
  }
  return StepResult::Progressed;
}

StepResult Interp::step(std::size_t t) {
  TaskCtx& task = this->task(t);
  if (task.finished) return StepResult::Finished;
  ++steps_;

  ExecFrame& top = task.frames.back();
  if (task.returning || top.index >= top.stmts->size()) {
    if (task.returning && top.kind != ExecFrame::Kind::CallBoundary) {
      // Unwind through non-call frames.
      killOwned(task, top);
      task.env = top.saved_env;
      task.frames.pop_back();
      if (task.frames.empty()) {
        finishTask(task);
        return StepResult::Finished;
      }
      return StepResult::Progressed;
    }
    return popFrame(task);
  }

  const ir::Stmt& stmt = *top.stmts->at(top.index);
  // execStmt may push frames and reallocate the frame vector; remember the
  // index of the frame we are advancing.
  std::size_t frame_index = task.frames.size() - 1;
  StepResult r = execStmt(task, stmt);
  if (r == StepResult::Blocked) return r;
  ++task.frames[frame_index].index;
  return r;
}

}  // namespace cuaf::rt
