#include "src/witness/replay.h"

#include <algorithm>

#include "src/runtime/explore.h"
#include "src/runtime/interp.h"

namespace cuaf::witness {

namespace {

constexpr std::size_t kNoVictimIndex = static_cast<std::size_t>(-1);
/// Delay-victim fallback sweeps the same task-index range as the oracle
/// explorer, so a warning the oracle can reproduce is also replayable here.
constexpr std::size_t kMaxFallbackVictims = 16;

struct RunResult {
  bool confirmed = false;
  bool unsupported = false;
  std::size_t steps = 0;
  StopReason stopped = StopReason::None;
};

/// One deterministic run. Victims — the tasks whose spawning `begin` is at
/// `task_loc`, or the single task `victim_index` when set — are delayed as
/// long as possible (scheduled only when no other task is ready), widening
/// the window between the parent's scope exit and the victim's remaining
/// accesses. Among non-victims, a task whose pending statement is the next
/// unconsumed guide sync event is preferred, steering execution along the
/// witness serialization.
RunResult runOnce(const ir::Module& module, const Program& program,
                  ProcId entry, const rt::ConfigAssignment& configs,
                  SourceLoc access_loc, SourceLoc task_loc,
                  const std::vector<SourceLoc>* guides,
                  std::size_t victim_index, std::size_t max_steps,
                  const Deadline& deadline) {
  RunResult out;
  rt::Interp interp(module, program, &configs);
  interp.start(entry);
  std::size_t guide_cursor = 0;

  auto isVictim = [&](std::size_t t) {
    if (victim_index != kNoVictimIndex) return t == victim_index;
    return task_loc.valid() && interp.taskSpawnLoc(t) == task_loc;
  };

  while (!interp.allFinished()) {
    if (interp.stepsExecuted() > max_steps) break;
    if (StopReason stop = deadline.check("witness.replay");
        stop != StopReason::None) {
      out.stopped = stop;
      break;
    }

    // Eagerly run invisible steps (they commute; same as the explorer).
    bool advanced = false;
    bool limited = false;
    for (std::size_t t = 0; t < interp.taskCount(); ++t) {
      while (!interp.taskFinished(t) && !interp.nextStepVisible(t) &&
             interp.canStep(t)) {
        if (interp.step(t) == rt::StepResult::Blocked) break;
        advanced = true;
        if (interp.stepsExecuted() > max_steps) {
          limited = true;
          break;
        }
      }
      if (limited) break;
    }
    if (limited) break;
    if (interp.allFinished()) break;

    std::vector<std::size_t> ready;
    for (std::size_t t = 0; t < interp.taskCount(); ++t) {
      if (!interp.taskFinished(t) && interp.canStep(t)) ready.push_back(t);
    }
    if (ready.empty()) {
      if (!advanced) break;  // deadlock: the schedule is infeasible here
      continue;
    }

    std::vector<std::size_t> pool;
    for (std::size_t t : ready) {
      if (!isVictim(t)) pool.push_back(t);
    }
    if (pool.empty()) pool = ready;  // only victims left: they must run

    std::size_t pick = pool.front();
    bool matched = false;
    if (guides != nullptr && guide_cursor < guides->size()) {
      for (std::size_t t : pool) {
        if (interp.nextSyncLoc(t) == (*guides)[guide_cursor]) {
          pick = t;
          matched = true;
          break;
        }
      }
    }
    interp.step(pick);
    if (matched) ++guide_cursor;
  }

  out.steps = interp.stepsExecuted();
  out.unsupported = interp.unsupportedFeature();
  out.confirmed = std::any_of(
      interp.events().begin(), interp.events().end(),
      [&](const rt::UafEvent& e) { return e.loc == access_loc; });
  return out;
}

}  // namespace

ReplayOutcome replaySchedule(const ccfg::Graph& graph, const Program& program,
                             SourceLoc access_loc, SourceLoc task_loc,
                             const std::vector<SourceLoc>& sync_guides,
                             const Options& options) {
  ReplayOutcome out;
  const ir::Module& module = graph.module();
  const ProcId entry = graph.rootProc();
  std::vector<rt::ConfigAssignment> combos =
      rt::enumerateConfigAssignments(module, options.max_config_combos);

  // The total budget is independent of the combo × attempt product: an
  // adversarial schedule that burns max_replay_steps on every attempt is
  // cut off once the runs collectively spend max_total_replay_steps.
  auto remainingBudget = [&]() -> std::size_t {
    if (out.steps >= options.max_total_replay_steps) return 0;
    return options.max_total_replay_steps - out.steps;
  };

  // Returns true when replay must stop (budget exhausted or deadline hit).
  auto attempt = [&](const rt::ConfigAssignment& configs,
                     const std::vector<SourceLoc>* guides,
                     std::size_t victim_index) {
    std::size_t budget = remainingBudget();
    if (budget == 0) return true;
    RunResult run = runOnce(module, program, entry, configs, access_loc,
                            task_loc, guides, victim_index,
                            std::min(options.max_replay_steps, budget),
                            options.deadline);
    ++out.runs;
    out.steps += run.steps;
    out.unsupported = out.unsupported || run.unsupported;
    out.confirmed = out.confirmed || run.confirmed;
    if (run.stopped != StopReason::None) {
      out.stopped = run.stopped;
      return true;
    }
    return out.confirmed || out.unsupported || remainingBudget() == 0;
  };

  for (const rt::ConfigAssignment& configs : combos) {
    // Guided run along the witness serialization, then the same victims
    // without guidance (the static serialization over-constrains some
    // runtime orders), then the explorer's adversarial victim sweep.
    if (attempt(configs, &sync_guides, kNoVictimIndex)) return out;
    if (attempt(configs, nullptr, kNoVictimIndex)) return out;
    for (std::size_t victim = 1; victim <= kMaxFallbackVictims; ++victim) {
      if (attempt(configs, nullptr, victim)) return out;
    }
  }
  return out;
}

}  // namespace cuaf::witness
