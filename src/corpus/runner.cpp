#include "src/corpus/runner.h"

#include <atomic>
#include <mutex>

#include "src/analysis/pipeline.h"
#include "src/runtime/explore.h"
#include "src/support/thread_pool.h"

namespace cuaf::corpus {

std::string Table1Stats::render() const {
  auto row = [](const std::string& label, const std::string& paper,
                const std::string& ours) {
    std::string out = label;
    if (out.size() < 42) out.append(42 - out.size(), ' ');
    out += paper;
    if (paper.size() < 10) out.append(10 - paper.size(), ' ');
    out += ours;
    out += '\n';
    return out;
  };
  char pct[32];
  std::snprintf(pct, sizeof(pct), "%.1f%%", truePositivePct());
  std::string out;
  out += row("Table I row", "paper", "measured");
  out += row("Total test cases", "5127", std::to_string(total_cases));
  out += row("Test cases with begin tasks", "218",
             std::to_string(cases_with_begin));
  out += row("Test cases with Use-After-Free warnings", "38",
             std::to_string(cases_with_warnings));
  out += row("Number of warnings reported", "437",
             std::to_string(warnings_reported));
  out += row("True positives", "63", std::to_string(true_positives));
  out += row("Percentage of true positives", "14.4%", pct);
  if (warnings_confirmed + warnings_unconfirmed + warnings_tail > 0) {
    // Replay-backed extension rows (no paper counterpart): every warning
    // carries a witness verdict from the runtime interpreter.
    char replay_pct[32];
    std::snprintf(replay_pct, sizeof(replay_pct), "%.1f%%",
                  replayConfirmedPct());
    out += row("Warnings replay-confirmed", "-",
               std::to_string(warnings_confirmed));
    out += row("Warnings replay-unconfirmed", "-",
               std::to_string(warnings_unconfirmed));
    out += row("Warnings tail-delayable", "-", std::to_string(warnings_tail));
    out += row("Replay-confirmed rate", "-", replay_pct);
  }
  // Exploration-cost extension row (no paper counterpart): distinct PPS
  // states generated across every analyzed procedure.
  out += row("PPS states explored", "-", std::to_string(pps_states_explored));
  return out;
}

ProgramOutcome runProgram(const std::string& name, const std::string& source,
                          const RunnerOptions& options) {
  ProgramOutcome outcome;
  outcome.name = name;

  AnalysisOptions analysis_options = options.analysis;
  if (options.classify_with_witness) {
    analysis_options.witness.enabled = true;
    analysis_options.witness.replay = true;
  }
  Pipeline pipeline(analysis_options);
  if (!pipeline.runSource(name, source)) {
    outcome.parse_ok = false;
    return outcome;
  }

  const AnalysisResult& analysis = pipeline.analysis();
  outcome.has_begin = analysis.hasBegin();
  for (const ProcAnalysis& pa : analysis.procs) {
    outcome.skipped_unsupported |= pa.skipped_unsupported;
    outcome.warnings += pa.warnings.size();
    outcome.pps_states += pa.pps_states;
    for (const witness::Witness& w : pa.witnesses) {
      switch (w.verdict) {
        case witness::Verdict::Confirmed: ++outcome.warnings_confirmed; break;
        case witness::Verdict::Unconfirmed:
          ++outcome.warnings_unconfirmed;
          break;
        case witness::Verdict::Tail: ++outcome.warnings_tail; break;
      }
    }
  }

  if (outcome.warnings > 0 && options.classify_with_oracle) {
    rt::ExploreOptions eo;
    eo.max_schedules = options.oracle_max_schedules;
    eo.random_schedules = options.oracle_random_schedules;
    rt::ExploreResult oracle =
        rt::exploreAll(*pipeline.module(), *pipeline.program(), eo);
    // A verdict from an interpreter that bailed on an unsupported feature
    // classifies nothing; leave those warnings out of the TP denominator.
    if (!oracle.unsupported) {
      outcome.warnings_classified = outcome.warnings;
      for (const ProcAnalysis& pa : analysis.procs) {
        for (const UafWarning& w : pa.warnings) {
          if (oracle.sawUafAt(w.access_loc)) ++outcome.true_positives;
        }
      }
    }
  }
  return outcome;
}

CorpusRunResult runCorpusDetailed(
    std::uint64_t seed, std::size_t count, const GeneratorOptions& gen_options,
    const RunnerOptions& options,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  // Materialize the corpus serially: the generator is a sequential seeded
  // stream, so sources must not depend on execution interleaving.
  struct Job {
    std::string name;
    std::string source;
  };
  std::vector<Job> jobs_list;
  const auto& curated = curatedPrograms();
  jobs_list.reserve(curated.size() + count);
  for (const CuratedProgram& p : curated) {
    jobs_list.push_back({p.name, p.source});
  }
  ProgramGenerator gen(seed, gen_options);
  for (std::size_t i = 0; i < count; ++i) {
    GeneratedProgram p = gen.next();
    jobs_list.push_back({std::move(p.name), std::move(p.source)});
  }

  CorpusRunResult result;
  std::size_t total = jobs_list.size();
  result.outcomes.resize(total);

  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;

  ThreadPool pool(ThreadPool::workersForJobs(options.jobs));
  pool.parallelFor(total, [&](std::size_t i) {
    result.outcomes[i] =
        runProgram(jobs_list[i].name, jobs_list[i].source, options);
    std::size_t d = done.fetch_add(1) + 1;
    if (progress && (d % 256) == 0) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      progress(d, total);
    }
  });

  // Deterministic aggregation: merge in program order, independent of the
  // order jobs finished in.
  Table1Stats& stats = result.stats;
  for (const ProgramOutcome& o : result.outcomes) {
    if (!o.parse_ok) continue;
    // Unconfirmed replays flag a case for manual review just like skipped
    // constructs do (the warning has no feasible runtime schedule).
    if (o.skipped_unsupported || o.warnings_unconfirmed > 0) {
      ++stats.cases_skipped;
    }
    if (o.skipped_unsupported && !options.count_skipped) continue;
    ++stats.total_cases;
    if (o.has_begin) ++stats.cases_with_begin;
    if (o.warnings > 0) ++stats.cases_with_warnings;
    stats.warnings_reported += o.warnings;
    stats.true_positives += o.true_positives;
    stats.warnings_classified += o.warnings_classified;
    stats.warnings_confirmed += o.warnings_confirmed;
    stats.warnings_unconfirmed += o.warnings_unconfirmed;
    stats.warnings_tail += o.warnings_tail;
    stats.pps_states_explored += o.pps_states;
  }
  return result;
}

Table1Stats runCorpus(
    std::uint64_t seed, std::size_t count, const GeneratorOptions& gen_options,
    const RunnerOptions& options,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  return runCorpusDetailed(seed, count, gen_options, options, progress).stats;
}

}  // namespace cuaf::corpus
