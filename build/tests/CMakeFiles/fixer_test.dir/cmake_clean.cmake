file(REMOVE_RECURSE
  "CMakeFiles/fixer_test.dir/fixer_test.cpp.o"
  "CMakeFiles/fixer_test.dir/fixer_test.cpp.o.d"
  "fixer_test"
  "fixer_test.pdb"
  "fixer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
