#include "src/support/failpoint.h"

#include <pthread.h>

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace cuaf::failpoint {

namespace {

constexpr std::uint64_t kUnlimited = static_cast<std::uint64_t>(-1);

struct Entry {
  Action action = Action::None;
  std::uint64_t skip = 0;           ///< hits to ignore before firing
  std::uint64_t count = kUnlimited; ///< remaining fires
};

std::mutex g_mutex;
std::unordered_map<std::string, Entry>& table() {
  static std::unordered_map<std::string, Entry> t;
  return t;
}
std::atomic<bool> g_active{false};
std::atomic<SiteObserver> g_observer{nullptr};

// The analysis service forks worker processes while other threads may hold
// g_mutex (per-request ScopedOverride). A child forked at that instant
// would inherit a locked mutex it can never unlock, so serialize fork
// against the table: lock in prepare, unlock on both sides. Installed
// lazily the first time a table operation runs — i.e. always before the
// supervisor's first fork, which probes the table when spawning.
void forkPrepare() { g_mutex.lock(); }
void forkRelease() { g_mutex.unlock(); }
void installForkGuard() {
  static int installed =
      pthread_atfork(&forkPrepare, &forkRelease, &forkRelease);
  (void)installed;
}

bool parseAction(std::string_view text, Action& out) {
  if (text == "timeout") out = Action::Timeout;
  else if (text == "cancel") out = Action::Cancel;
  else if (text == "alloc") out = Action::AllocFail;
  else if (text == "ioerror") out = Action::IoError;
  else if (text == "crash") out = Action::Crash;
  else if (text == "hang") out = Action::Hang;
  else return false;
  return true;
}

bool parseNumber(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

/// Parses one "site=action[@skip][*count]" entry.
bool parseEntry(std::string_view text, std::string& site, Entry& entry,
                std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "bad failpoint entry \"" + std::string(text) + "\": " + why;
    }
    return false;
  };
  std::size_t eq = text.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return fail("expected site=action");
  }
  site = std::string(text.substr(0, eq));
  std::string_view rest = text.substr(eq + 1);

  std::size_t star = rest.find('*');
  if (star != std::string_view::npos) {
    if (!parseNumber(rest.substr(star + 1), entry.count)) {
      return fail("count after '*' must be a number");
    }
    rest = rest.substr(0, star);
  }
  std::size_t at = rest.find('@');
  if (at != std::string_view::npos) {
    if (!parseNumber(rest.substr(at + 1), entry.skip)) {
      return fail("skip after '@' must be a number");
    }
    rest = rest.substr(0, at);
  }
  if (!parseAction(rest, entry.action)) {
    return fail("unknown action (timeout|cancel|alloc|ioerror)");
  }
  return true;
}

/// Renders the live table back into spec form (for ScopedOverride restore).
std::string snapshotLocked() {
  std::string out;
  for (const auto& [site, e] : table()) {
    if (!out.empty()) out += ';';
    out += site;
    out += '=';
    out += actionName(e.action);
    if (e.skip > 0) out += "@" + std::to_string(e.skip);
    if (e.count != kUnlimited) out += "*" + std::to_string(e.count);
  }
  return out;
}

}  // namespace

const char* actionName(Action a) {
  switch (a) {
    case Action::None: return "none";
    case Action::Timeout: return "timeout";
    case Action::Cancel: return "cancel";
    case Action::AllocFail: return "alloc";
    case Action::IoError: return "ioerror";
    case Action::Crash: return "crash";
    case Action::Hang: return "hang";
  }
  return "?";
}

bool configure(std::string_view spec, std::string* error) {
  installForkGuard();
  std::unordered_map<std::string, Entry> parsed;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t semi = spec.find(';', start);
    std::string_view piece = spec.substr(
        start, semi == std::string_view::npos ? spec.size() - start
                                              : semi - start);
    if (!piece.empty()) {
      std::string site;
      Entry entry;
      if (!parseEntry(piece, site, entry, error)) return false;
      parsed[std::move(site)] = entry;
    }
    if (semi == std::string_view::npos) break;
    start = semi + 1;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  table() = std::move(parsed);
  g_active.store(!table().empty(), std::memory_order_relaxed);
  return true;
}

void configureFromEnv() {
  const char* spec = std::getenv("CUAF_FAILPOINTS");
  if (spec != nullptr && *spec != '\0') configure(spec);
}

void clear() {
  installForkGuard();
  std::lock_guard<std::mutex> lock(g_mutex);
  table().clear();
  g_active.store(false, std::memory_order_relaxed);
}

bool anyActive() { return g_active.load(std::memory_order_relaxed); }

void setSiteObserver(SiteObserver observer) {
  g_observer.store(observer, std::memory_order_relaxed);
}

SiteObserver siteObserver() {
  return g_observer.load(std::memory_order_relaxed);
}

Action fire(std::string_view site) {
  if (!anyActive()) return Action::None;
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = table().find(std::string(site));
  if (it == table().end()) return Action::None;
  Entry& e = it->second;
  if (e.skip > 0) {
    --e.skip;
    return Action::None;
  }
  if (e.count == 0) return Action::None;
  if (e.count != kUnlimited) --e.count;
  return e.action;
}

ScopedOverride::ScopedOverride(std::string_view spec) {
  installForkGuard();
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    saved_spec_ = snapshotLocked();
  }
  ok_ = configure(spec, &error_);
}

ScopedOverride::~ScopedOverride() { configure(saved_spec_); }

}  // namespace cuaf::failpoint
