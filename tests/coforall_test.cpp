// Tests for the coforall extension: one task per iteration with an implicit
// join; the loop index is captured by value into each task.
#include <gtest/gtest.h>

#include "src/analysis/pipeline.h"
#include "src/ast/printer.h"
#include "src/ir/ir_printer.h"
#include "src/runtime/explore.h"
#include "tests/test_util.h"

namespace cuaf {
namespace {

using test::Fixture;

AnalysisOptions unrollOpts() {
  AnalysisOptions opts;
  opts.build.unroll_loops = true;
  return opts;
}

TEST(Coforall, Parses) {
  auto f = Fixture::parse(R"(proc p() {
  var t = 0;
  coforall i in 1..4 with (ref t) {
    t += i;
  }
})");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto* co = f.program->procs[0]->body->stmts[1]->as<CoforallStmt>();
  ASSERT_NE(co, nullptr);
  EXPECT_EQ(co->with_items.size(), 1u);
}

TEST(Coforall, PrintsRoundTrip) {
  auto f = Fixture::parse(
      "proc p() { var t = 0; coforall i in 1..4 with (ref t) { t += i; } }");
  ASSERT_FALSE(f.diags.hasErrors());
  AstPrinter printer(f.interner);
  std::string printed = printer.print(*f.program);
  EXPECT_NE(printed.find("coforall i in 1..4 with (ref t)"),
            std::string::npos);
  auto f2 = Fixture::parse(printed);
  EXPECT_FALSE(f2.diags.hasErrors()) << printed;
}

TEST(Coforall, IndexIsTaskLocalShadow) {
  auto f = Fixture::analyze(R"(proc p() {
  coforall i in 1..3 {
    writeln(i);
  }
})");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto* co = f.program->procs[0]->body->stmts[0]->as<CoforallStmt>();
  ASSERT_NE(co, nullptr);
  EXPECT_TRUE(co->resolved_index.valid());
  EXPECT_TRUE(co->index_shadow.valid());
  EXPECT_NE(co->resolved_index, co->index_shadow);
  EXPECT_TRUE(f.sema->var(co->index_shadow).is_task_copy);
}

TEST(Coforall, LowersToFencedLoopOfTasks) {
  auto f = Fixture::lower(R"(proc p() {
  var t = 0;
  coforall i in 1..4 with (ref t) {
    t += i;
  }
})");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const ir::Proc* proc = f.module->procs[0].get();
  const auto& body = proc->body->body;
  ASSERT_EQ(body.size(), 2u);
  ASSERT_EQ(body[1]->kind, ir::StmtKind::SyncBlock);
  ASSERT_EQ(body[1]->body.size(), 1u);
  const ir::Stmt& loop = *body[1]->body[0];
  EXPECT_EQ(loop.kind, ir::StmtKind::Loop);
  EXPECT_TRUE(loop.loop_is_for);
  EXPECT_TRUE(loop.loop_has_sync_or_begin);
  ASSERT_EQ(loop.body.size(), 1u);
  const ir::Stmt& task = *loop.body[0];
  EXPECT_EQ(task.kind, ir::StmtKind::Begin);
  // Captures: `ref t` plus the implicit `in i`.
  EXPECT_EQ(task.captures.size(), 2u);
}

TEST(Coforall, UnsupportedWithoutUnrolling) {
  // Paper-baseline arm: with both loop extensions off the desugared
  // task-loop is out of scope. (The default sync-loop model analyzes it —
  // see SyncLoopModelAnalyzesByDefault.)
  AnalysisOptions opts;
  opts.build.model_sync_loops = false;
  Pipeline pipeline(opts);
  ASSERT_TRUE(pipeline.runSource("t", R"(proc p() {
  var t = 0;
  coforall i in 1..4 with (ref t) { t += i; }
})"));
  EXPECT_TRUE(pipeline.analysis().procs[0].skipped_unsupported);
}

TEST(Coforall, SyncLoopModelAnalyzesByDefault) {
  Pipeline pipeline;
  ASSERT_TRUE(pipeline.runSource("t", R"(proc p() {
  var t = 0;
  coforall i in 1..4 with (ref t) { t += i; }
  writeln(t);
})"));
  EXPECT_FALSE(pipeline.analysis().procs[0].skipped_unsupported);
  EXPECT_EQ(pipeline.analysis().warningCount(), 0u);
}

TEST(Coforall, UnrolledAnalysisProvesSafe) {
  Pipeline pipeline(unrollOpts());
  ASSERT_TRUE(pipeline.runSource("t", R"(proc p() {
  var t = 0;
  coforall i in 1..4 with (ref t) { t += i; }
  writeln(t);
})"));
  EXPECT_FALSE(pipeline.analysis().procs[0].skipped_unsupported);
  EXPECT_EQ(pipeline.analysis().warningCount(), 0u);
}

TEST(Coforall, RuntimeJoinsAllTasks) {
  Fixture f = Fixture::lower(R"(proc p() {
  var t = 0;
  coforall i in 1..4 with (ref t) { t += i; }
  writeln(t);
})");
  ASSERT_FALSE(f.diags.hasErrors());
  rt::ExploreResult oracle = rt::exploreAll(*f.module, *f.program, {});
  EXPECT_TRUE(oracle.uaf_sites.empty());
  EXPECT_EQ(oracle.deadlock_schedules, 0u);
}

TEST(Coforall, EscapingTaskInsideStillCaught) {
  // A fire-and-forget begin nested inside the coforall body escapes the
  // join only if it outlives the fence — the sync block fences transitively,
  // so it is safe; but an access to a coforall-body local from that begin
  // after the body scope dies is a real UAF the oracle can see.
  Fixture f = Fixture::lower(R"(proc p() {
  var t = 0;
  coforall i in 1..2 with (ref t) {
    var local = i;
    begin with (ref local) {
      writeln(local);
    }
  }
})");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  rt::ExploreResult oracle = rt::exploreAll(*f.module, *f.program, {});
  // The nested begin is fenced by the coforall's implicit sync region
  // (transitive), so `local` is still alive when it runs... but `local`
  // dies when the *iteration task* finishes, which can precede the nested
  // begin's access: a real race.
  EXPECT_FALSE(oracle.uaf_sites.empty());
}

TEST(Coforall, WritelnCountMatchesIterations) {
  Fixture f = Fixture::lower(R"(proc p() {
  coforall i in 1..5 {
    writeln(i);
  }
})");
  ASSERT_FALSE(f.diags.hasErrors());
  rt::Interp interp(*f.module, *f.program, nullptr);
  interp.start(f.program->procs[0]->id);
  // Round-robin everything to completion.
  bool progress = true;
  while (!interp.allFinished() && progress) {
    progress = false;
    for (std::size_t t = 0; t < interp.taskCount(); ++t) {
      if (!interp.taskFinished(t) && interp.canStep(t)) {
        interp.step(t);
        progress = true;
      }
    }
  }
  EXPECT_TRUE(interp.allFinished());
  EXPECT_EQ(interp.writelnCount(), 5u);
  EXPECT_TRUE(interp.events().empty());
}

TEST(Coforall, IndexValuesAreDistinctPerTask) {
  // If every task saw the same (final) index the sum would be 4+4 = wrong;
  // correct per-iteration capture yields 1+2+3+4 = 10, observable via a
  // conditional deadlock trick.
  Fixture f = Fixture::lower(R"(proc p() {
  var t = 0;
  coforall i in 1..4 with (ref t) { t += i; }
  if (t != 10) {
    var never$: sync bool;
    never$;
  }
})");
  ASSERT_FALSE(f.diags.hasErrors());
  rt::ExploreResult oracle = rt::exploreAll(*f.module, *f.program, {});
  EXPECT_EQ(oracle.deadlock_schedules, 0u);
}

TEST(Coforall, SemaErrorsOnBadWithClause) {
  auto f = Fixture::analyze("proc p() { coforall i in 1..3 with (ref nope) { } }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Coforall, IndexNotVisibleAfterLoop) {
  auto f = Fixture::analyze(R"(proc p() {
  coforall i in 1..3 { writeln(i); }
  writeln(i);
})");
  EXPECT_TRUE(f.diags.hasErrors());
}

}  // namespace
}  // namespace cuaf
