#include "src/hb/detector.h"

#include <algorithm>

namespace cuaf::hb {

void Detector::onTaskSpawn(std::size_t parent, std::size_t child) {
  // Materialize both clocks before taking references: task() may grow the
  // dense task vector and would invalidate a reference held across it.
  (void)clocks_.task(parent);
  (void)clocks_.task(child);
  // Child inherits everything the parent did before the spawn; the parent
  // then advances so its post-spawn events are concurrent with the child.
  VectorClock& pc = clocks_.task(parent);
  clocks_.task(child).join(pc);
  pc.bump(parent);
}

void Detector::onTaskEnd(std::size_t task,
                         const std::vector<std::uint32_t>& regions) {
  for (std::uint32_t r : regions) {
    clocks_.region(r).join(clocks_.task(task));
  }
}

void Detector::onRegionClose(std::size_t task, std::uint32_t region) {
  // The fence: the closing task has waited for every task spawned inside
  // the region, so it acquires the union of their final clocks.
  VectorClock& tc = clocks_.task(task);
  tc.join(clocks_.region(region));
  tc.bump(task);
}

void Detector::onSyncOp(std::size_t task, std::uint32_t cell_uid,
                        SourceLoc /*loc*/) {
  // Release + acquire in both directions: the op is ordered after every
  // earlier op on this cell and before every later one (full/empty and
  // wait-until blocking serialize ops on one cell in the observed order
  // for the handshake protocols the corpus uses).
  VectorClock& tc = clocks_.task(task);
  VectorClock& cc = clocks_.cell(cell_uid);
  cc.join(tc);
  tc.join(cc);
  tc.bump(task);
}

void Detector::onBarrierRelease(std::uint32_t cell_uid,
                                const std::vector<std::size_t>& tasks,
                                SourceLoc /*loc*/) {
  // All-to-all rendezvous: every waiter's pre-wait work happens before
  // every waiter's post-wait work. This must be atomic over the whole
  // release set — joining waiters into the cell clock one at a time while
  // releasing them would leave early releasers without later arrivers'
  // clocks and over-order the run. So: union all waiter clocks into the
  // cell clock first, then hand the union to each waiter.
  for (std::size_t t : tasks) (void)clocks_.task(t);
  VectorClock& cc = clocks_.cell(cell_uid);
  for (std::size_t t : tasks) cc.join(clocks_.task(t));
  for (std::size_t t : tasks) {
    VectorClock& tc = clocks_.task(t);
    tc.join(cc);
    tc.bump(t);
  }
}

void Detector::onAccess(std::size_t task, std::uint32_t cell_uid, VarId var,
                        SourceLoc loc, bool is_write, bool alive) {
  CellState& cell = cells_[cell_uid];
  cell.var = var;
  if (!alive || cell.freed) {
    // Concrete use-after-free under this schedule: the free already
    // executed, so "access happens-before free" is impossible.
    flag(loc, var, is_write);
    return;
  }
  std::uint32_t epoch = clocks_.task(task).of(task);
  for (AccessRecord& rec : cell.accesses) {
    if (rec.task == task && rec.loc == loc && rec.is_write == is_write) {
      rec.epoch = std::max(rec.epoch, epoch);
      return;
    }
  }
  cell.accesses.push_back(AccessRecord{task, loc, is_write, epoch});
}

void Detector::onFree(std::size_t task, std::uint32_t cell_uid) {
  auto it = cells_.find(cell_uid);
  if (it == cells_.end()) {
    // Never accessed: remember the free so later accesses flag.
    cells_[cell_uid].freed = true;
    return;
  }
  CellState& cell = it->second;
  cell.freed = true;
  const VectorClock& free_clock = clocks_.task(task);
  for (const AccessRecord& rec : cell.accesses) {
    // rec happens-before the free iff the freeing task's view covers the
    // access epoch (FastTrack: one component comparison per record).
    if (rec.epoch > free_clock.of(rec.task)) {
      flag(rec.loc, cell.var, rec.is_write);
    }
  }
  cell.accesses.clear();
}

bool Detector::flaggedAt(SourceLoc loc) const {
  return std::any_of(sites_.begin(), sites_.end(),
                     [&](const rt::UafEvent& e) { return e.loc == loc; });
}

void Detector::flag(SourceLoc loc, VarId var, bool is_write) {
  for (rt::UafEvent& e : sites_) {
    if (e.loc == loc && e.var == var) {
      e.is_write = e.is_write || is_write;
      return;
    }
  }
  sites_.push_back(rt::UafEvent{loc, var, is_write});
}

}  // namespace cuaf::hb
