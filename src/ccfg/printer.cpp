#include "src/ccfg/printer.h"

#include <unordered_set>

namespace cuaf::ccfg {

std::string_view syncOpName(SyncOp op) {
  switch (op) {
    case SyncOp::ReadFE: return "readFE";
    case SyncOp::ReadFF: return "readFF";
    case SyncOp::WriteEF: return "writeEF";
    case SyncOp::AtomicFill: return "atomic.fill";
    case SyncOp::AtomicWait: return "atomic.wait";
    case SyncOp::BarrierWait: return "barrier.wait";
    case SyncOp::ChaosFill: return "chaos.fill";
    case SyncOp::ChaosDrain: return "chaos.drain";
  }
  return "?";
}

std::string printGraph(const Graph& graph) {
  std::string out;
  out += "ccfg: nodes=" + std::to_string(graph.nodeCount()) +
         " tasks=" + std::to_string(graph.taskCount()) +
         " accesses=" + std::to_string(graph.accessCount()) + "\n";
  if (graph.unsupported()) {
    out += "UNSUPPORTED: " + graph.unsupportedReason() + "\n";
    return out;
  }

  // PF membership for annotation.
  std::unordered_set<std::uint32_t> pf_nodes;
  for (const auto& [var, nodes] : graph.parallelFrontiers()) {
    for (NodeId n : nodes) pf_nodes.insert(n.index());
  }

  for (const Task& t : graph.tasks()) {
    out += "task " + std::to_string(t.id.index());
    if (t.parent.valid()) {
      out += " parent=" + std::to_string(t.parent.index());
    } else {
      out += " (root)";
    }
    if (t.pruned) {
      out += " PRUNED(rule ";
      out += t.prune_rule;
      out += ')';
    }
    out += '\n';
    for (const Node& n : graph.nodes()) {
      if (n.task != t.id) continue;
      out += "  node " + std::to_string(n.id.index());
      if (!n.accesses.empty()) {
        out += " OV={";
        for (std::size_t i = 0; i < n.accesses.size(); ++i) {
          if (i > 0) out += ", ";
          const OvUse& a = graph.access(n.accesses[i]);
          out += graph.varName(a.var);
          if (a.pre_safe) out += "(safe)";
        }
        out += '}';
      }
      if (n.sync) {
        out += ' ';
        out += syncOpName(n.sync->op);
        out += ' ';
        out += graph.varName(n.sync->var);
      }
      if (pf_nodes.contains(n.id.index())) out += " [PF]";
      if (!n.succs.empty()) {
        out += " ->";
        for (NodeId s : n.succs) out += ' ' + std::to_string(s.index());
      }
      if (!n.spawns.empty()) {
        out += " spawns";
        for (TaskId s : n.spawns) out += ' ' + std::to_string(s.index());
      }
      out += '\n';
    }
  }
  for (const auto& [var, nodes] : graph.parallelFrontiers()) {
    out += "PF(" + graph.varName(var) + ") = {";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(nodes[i].index());
    }
    out += "}\n";
  }
  return out;
}

std::string toDot(const Graph& graph) {
  std::unordered_set<std::uint32_t> pf_nodes;
  for (const auto& [var, nodes] : graph.parallelFrontiers()) {
    for (NodeId n : nodes) pf_nodes.insert(n.index());
  }

  std::string out = "digraph ccfg {\n  rankdir=TB;\n";
  for (const Node& n : graph.nodes()) {
    const Task& t = graph.task(n.task);
    out += "  n" + std::to_string(n.id.index()) + " [label=\"";
    out += std::to_string(n.id.index());
    if (!n.accesses.empty()) {
      out += "\\nOV={";
      for (std::size_t i = 0; i < n.accesses.size(); ++i) {
        if (i > 0) out += ",";
        out += graph.varName(graph.access(n.accesses[i]).var);
      }
      out += '}';
    }
    if (n.sync) {
      out += "\\n";
      out += syncOpName(n.sync->op);
      out += ' ';
      out += graph.varName(n.sync->var);
    }
    out += '"';
    if (n.sync) out += ", shape=diamond";
    if (pf_nodes.contains(n.id.index())) out += ", peripheries=2";
    if (t.pruned) out += ", style=dotted";
    out += "];\n";
  }
  for (const Node& n : graph.nodes()) {
    for (NodeId s : n.succs) {
      out += "  n" + std::to_string(n.id.index()) + " -> n" +
             std::to_string(s.index()) + ";\n";
    }
    for (TaskId s : n.spawns) {
      const Task& t = graph.task(s);
      out += "  n" + std::to_string(n.id.index()) + " -> n" +
             std::to_string(t.entry.index()) + " [style=dashed];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace cuaf::ccfg
