// Witness engine tests: schedule extraction from PPS traces, replay
// verdicts against the runtime interpreter, the warning/witness pairing
// contract through the checker, trace-memory gating, JSON stability, and
// the replay-confirmation rate over the curated suite.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/analysis/checker.h"
#include "src/analysis/json_report.h"
#include "src/analysis/pipeline.h"
#include "src/corpus/curated.h"
#include "src/corpus/runner.h"
#include "src/pps/pps.h"
#include "src/witness/witness.h"
#include "tests/test_util.h"

namespace cuaf {
namespace {

using test::Fixture;

// Paper Figure 1 shape: task B's read of x is the dangerous access.
const char* fig1Source() {
  return corpus::findCurated("paper_fig1")->source.c_str();
}

// A begin task whose access has no later sync event in its strand: reported
// as a tail, and trivially reproducible by delaying the task past scope end.
constexpr const char* kTailProgram = R"(proc p() {
  var x: int = 10;
  begin with (ref x) {
    writeln(x);
  }
}
)";

AnalysisResult analyzeWithWitness(Fixture& f, bool replay,
                                  bool keep_artifacts = false) {
  AnalysisOptions options;
  options.witness.enabled = true;
  options.witness.replay = replay;
  options.keep_artifacts = keep_artifacts;
  UseAfterFreeChecker checker(options);
  return checker.run(*f.module, f.diags, f.program.get());
}

TEST(WitnessExtraction, BuildsOneScheduleLeadingToEachWarning) {
  Fixture f = Fixture::lower(fig1Source());
  ASSERT_TRUE(f.module) << f.diagText();

  auto graph = f.buildCcfg();
  ASSERT_TRUE(graph);
  pps::Options pps_options;
  pps_options.record_trace = true;
  pps::Result result = pps::explore(*graph, pps_options);
  ASSERT_EQ(result.unsafe.size(), 1u);
  ASSERT_EQ(result.report_sites.size(), 1u);

  witness::Options options;
  options.enabled = true;
  std::vector<witness::Witness> witnesses =
      witness::buildWitnesses(*graph, result, nullptr, options);
  ASSERT_EQ(witnesses.size(), 1u);

  const witness::Witness& w = witnesses.front();
  EXPECT_EQ(w.var_name, "x");
  EXPECT_FALSE(w.replayed);  // no program handed in => replay impossible
  EXPECT_NE(w.verdict, witness::Verdict::Confirmed);
  ASSERT_FALSE(w.schedule.empty());
  // The counterexample path serializes real sync operations: every step
  // carries a non-initial rule, and the sync ops use the documented names.
  const std::set<std::string> ops = {"readFE", "readFF", "writeEF",
                                     "atomicFill", "atomicWait"};
  for (const witness::ScheduleStep& step : w.schedule) {
    EXPECT_NE(step.rule, pps::Rule::Initial);
    for (const witness::SyncStep& sync : step.syncs) {
      EXPECT_FALSE(sync.var.empty());
      EXPECT_TRUE(ops.count(sync.op)) << sync.op;
      EXPECT_TRUE(sync.loc.valid());
    }
  }
}

TEST(WitnessExtraction, DisabledOptionsProduceNoWitnesses) {
  Fixture f = Fixture::lower(fig1Source());
  ASSERT_TRUE(f.module) << f.diagText();
  auto graph = f.buildCcfg();
  pps::Options pps_options;
  pps_options.record_trace = true;
  pps::Result result = pps::explore(*graph, pps_options);
  ASSERT_FALSE(result.unsafe.empty());
  EXPECT_TRUE(
      witness::buildWitnesses(*graph, result, nullptr, witness::Options{})
          .empty());
}

TEST(WitnessReplay, ConfirmsPaperFig1Warning) {
  Fixture f = Fixture::lower(fig1Source());
  ASSERT_TRUE(f.module) << f.diagText();
  AnalysisResult result = analyzeWithWitness(f, /*replay=*/true);

  ASSERT_EQ(result.warningCount(), 1u);
  const ProcAnalysis& pa = result.procs.front();
  ASSERT_EQ(pa.witnesses.size(), pa.warnings.size());

  const witness::Witness& w = pa.witnesses.front();
  EXPECT_EQ(w.verdict, witness::Verdict::Confirmed);
  EXPECT_TRUE(w.replayed);
  EXPECT_GE(w.replay_runs, 1u);
  EXPECT_GT(w.replay_steps, 0u);
  // The witness pairs with its warning: same access site, same variable.
  EXPECT_TRUE(w.access_loc == pa.warnings.front().access_loc);
  EXPECT_EQ(w.var_name, pa.warnings.front().var_name);
}

TEST(WitnessReplay, TailAccessConfirmedByDelayPastScopeEnd) {
  Fixture f = Fixture::lower(kTailProgram);
  ASSERT_TRUE(f.module) << f.diagText();
  AnalysisResult result = analyzeWithWitness(f, /*replay=*/true);

  ASSERT_EQ(result.warningCount(), 1u);
  const witness::Witness& w = result.procs.front().witnesses.front();
  EXPECT_TRUE(w.from_tail);
  EXPECT_TRUE(w.replayed);
  EXPECT_EQ(w.verdict, witness::Verdict::Confirmed);
}

TEST(WitnessReplay, WithoutReplayTailStaysTail) {
  Fixture f = Fixture::lower(kTailProgram);
  ASSERT_TRUE(f.module) << f.diagText();
  AnalysisResult result = analyzeWithWitness(f, /*replay=*/false);

  ASSERT_EQ(result.warningCount(), 1u);
  const witness::Witness& w = result.procs.front().witnesses.front();
  EXPECT_TRUE(w.from_tail);
  EXPECT_FALSE(w.replayed);
  EXPECT_EQ(w.verdict, witness::Verdict::Tail);
}

// Regression: the combos × (guided + unguided + victim sweep) attempt loop
// used to bound each run individually but not their sum; an adversarial
// program could burn max_replay_steps on every attempt. The shared budget
// cuts the whole replay off after max_total_replay_steps.
TEST(WitnessReplay, TotalBudgetBoundsWorkAcrossAttempts) {
  Fixture f = Fixture::lower(fig1Source());
  ASSERT_TRUE(f.module) << f.diagText();
  AnalysisOptions options;
  options.witness.enabled = true;
  options.witness.replay = true;
  options.witness.max_total_replay_steps = 1;
  UseAfterFreeChecker checker(options);
  AnalysisResult result = checker.run(*f.module, f.diags, f.program.get());

  ASSERT_EQ(result.warningCount(), 1u);
  // Budget exhaustion is a bound, not a fault: the analysis completes.
  EXPECT_EQ(result.stopped, StopReason::None);
  const witness::Witness& w = result.procs.front().witnesses.front();
  EXPECT_TRUE(w.replayed);
  // The first run consumed the whole budget; no further attempts ran.
  EXPECT_EQ(w.replay_runs, 1u);
  EXPECT_GT(w.replay_steps, 0u);
  EXPECT_LE(w.replay_steps, 8u);
  EXPECT_NE(w.verdict, witness::Verdict::Confirmed);

  // The default budget is ample: the same program replays to confirmation.
  Fixture g = Fixture::lower(fig1Source());
  ASSERT_TRUE(g.module) << g.diagText();
  AnalysisResult full = analyzeWithWitness(g, /*replay=*/true);
  EXPECT_EQ(full.procs.front().witnesses.front().verdict,
            witness::Verdict::Confirmed);
}

TEST(WitnessReplay, SafeProgramYieldsNoWitnesses) {
  Fixture f =
      Fixture::lower(corpus::findCurated("paper_fig1_swapped")->source);
  ASSERT_TRUE(f.module) << f.diagText();
  AnalysisResult result = analyzeWithWitness(f, /*replay=*/true);
  EXPECT_EQ(result.warningCount(), 0u);
  for (const ProcAnalysis& pa : result.procs) {
    EXPECT_TRUE(pa.witnesses.empty());
  }
}

TEST(WitnessChecker, EveryWarningCarriesAWitnessInOrder) {
  // A two-warning program: both tasks' accesses are dangerous.
  Fixture f = Fixture::lower(R"(proc p() {
  var x: int = 0;
  var y: int = 0;
  begin with (ref x) { writeln(x); }
  begin with (ref y) { writeln(y); }
}
)");
  ASSERT_TRUE(f.module) << f.diagText();
  AnalysisResult result = analyzeWithWitness(f, /*replay=*/true);
  ASSERT_EQ(result.warningCount(), 2u);
  const ProcAnalysis& pa = result.procs.front();
  ASSERT_EQ(pa.witnesses.size(), pa.warnings.size());
  for (std::size_t i = 0; i < pa.warnings.size(); ++i) {
    EXPECT_TRUE(pa.witnesses[i].access_loc == pa.warnings[i].access_loc)
        << "witness " << i << " pairs with the wrong warning";
    EXPECT_EQ(pa.witnesses[i].var_name, pa.warnings[i].var_name);
    EXPECT_EQ(pa.witnesses[i].verdict, witness::Verdict::Confirmed);
  }
}

TEST(WitnessChecker, WitnessesDisabledLeavesAnalysisUntouched) {
  Fixture f = Fixture::lower(fig1Source());
  ASSERT_TRUE(f.module) << f.diagText();
  UseAfterFreeChecker checker;
  AnalysisResult result = checker.run(*f.module, f.diags, f.program.get());
  ASSERT_EQ(result.warningCount(), 1u);
  EXPECT_TRUE(result.procs.front().witnesses.empty());
}

// Satellite: PPS trace memory is gated behind Options::record_trace. A
// default exploration must not retain per-state traces or report sites.
TEST(WitnessTraceMemory, NoTraceRetainedWhenRecordingDisabled) {
  Fixture f = Fixture::lower(fig1Source());
  ASSERT_TRUE(f.module) << f.diagText();
  auto graph = f.buildCcfg();
  ASSERT_TRUE(graph);

  pps::Result lean = pps::explore(*graph, pps::Options{});
  EXPECT_FALSE(lean.unsafe.empty());
  EXPECT_TRUE(lean.trace.empty());
  EXPECT_TRUE(lean.report_sites.empty());

  pps::Options traced_options;
  traced_options.record_trace = true;
  pps::Result traced = pps::explore(*graph, traced_options);
  EXPECT_EQ(traced.unsafe, lean.unsafe);  // tracing never changes verdicts
  EXPECT_FALSE(traced.trace.empty());
  ASSERT_EQ(traced.report_sites.size(), traced.unsafe.size());
  bool any_executed = false;
  for (const pps::TraceEntry& e : traced.trace) {
    any_executed |= !e.executed.empty();
  }
  EXPECT_TRUE(any_executed);
}

TEST(WitnessTraceMemory, CheckerForcesTraceOnlyForWitnessRuns) {
  Fixture f = Fixture::lower(fig1Source());
  ASSERT_TRUE(f.module) << f.diagText();

  AnalysisOptions plain;
  plain.keep_artifacts = true;
  AnalysisResult without = UseAfterFreeChecker(plain).run(*f.module, f.diags);
  ASSERT_TRUE(without.procs.front().pps_result);
  EXPECT_TRUE(without.procs.front().pps_result->trace.empty());

  AnalysisResult with = analyzeWithWitness(f, /*replay=*/false,
                                           /*keep_artifacts=*/true);
  ASSERT_TRUE(with.procs.front().pps_result);
  EXPECT_FALSE(with.procs.front().pps_result->trace.empty());
}

TEST(WitnessJson, WellFormedStableAndPortable) {
  Fixture f = Fixture::lower(fig1Source());
  ASSERT_TRUE(f.module) << f.diagText();
  AnalysisResult result = analyzeWithWitness(f, /*replay=*/true);
  ASSERT_EQ(result.warningCount(), 1u);
  const witness::Witness& w = result.procs.front().witnesses.front();

  std::string json = witness::toJson(w);
  EXPECT_TRUE(test::jsonWellFormed(json)) << json;
  EXPECT_EQ(json, witness::toJson(w));  // rendering is pure
  EXPECT_NE(json.find("\"verdict\":\"confirmed\""), std::string::npos);
  EXPECT_NE(json.find("\"schedule\":["), std::string::npos);
  // No file name: cached witnesses stay byte-identical across item names.
  EXPECT_EQ(json.find("\"file\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(WitnessJson, EmbeddedInAnalysisReport) {
  AnalysisOptions options;
  options.witness.enabled = true;
  options.witness.replay = true;
  Pipeline pipeline(options);
  ASSERT_TRUE(pipeline.runSource("fig1.chpl", fig1Source()));
  std::string report = toJson(pipeline.analysis(), pipeline.sourceManager());
  EXPECT_TRUE(test::jsonWellFormed(report)) << report;
  EXPECT_NE(report.find("\"witness\":{"), std::string::npos);
  EXPECT_NE(report.find("\"verdict\":\"confirmed\""), std::string::npos);
}

// Acceptance criterion: over the curated suite, every warning carries a
// verdict and >=90% of the oracle-classified true positives replay as
// `confirmed` (bench_witness measures the same rate over a larger corpus).
TEST(WitnessCuratedSweep, ReplayConfirmsAtLeastNinetyPercentOfTruePositives) {
  corpus::RunnerOptions options;
  options.classify_with_witness = true;
  std::size_t true_positives = 0;
  std::size_t confirmed = 0;
  for (const corpus::CuratedProgram& p : corpus::curatedPrograms()) {
    corpus::ProgramOutcome o = corpus::runProgram(p.name, p.source, options);
    ASSERT_TRUE(o.parse_ok) << p.name;
    EXPECT_EQ(o.warnings_confirmed + o.warnings_unconfirmed + o.warnings_tail,
              o.warnings)
        << p.name << ": some warning is missing a witness verdict";
    true_positives += o.true_positives;
    confirmed += o.warnings_confirmed;
  }
  ASSERT_GT(true_positives, 0u);
  EXPECT_GE(confirmed * 10, true_positives * 9)
      << confirmed << "/" << true_positives << " confirmed";
}

}  // namespace
}  // namespace cuaf
