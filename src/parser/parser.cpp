#include "src/parser/parser.h"

#include <string>

namespace cuaf {

Parser::Parser(const SourceManager& sm, FileId file, StringInterner& interner,
               DiagnosticEngine& diags)
    : lexer_(sm, file, diags), interner_(interner), diags_(diags) {
  cur_ = lexer_.next();
}

const Token& Parser::peekNext() {
  if (!has_next_) {
    next_ = lexer_.next();
    has_next_ = true;
  }
  return next_;
}

void Parser::bump() {
  ++tokens_consumed_;
  if (has_next_) {
    cur_ = next_;
    has_next_ = false;
  } else {
    cur_ = lexer_.next();
  }
}

bool Parser::accept(TokKind k) {
  if (!at(k)) return false;
  bump();
  return true;
}

void Parser::expect(TokKind k, const char* context) {
  if (at(k)) {
    bump();
    return;
  }
  diags_.error(cur_.loc, "syntax",
               std::string("expected ") + std::string(tokKindName(k)) +
                   " in " + context + ", found " +
                   std::string(tokKindName(cur_.kind)));
  throw ParseError{};
}

void Parser::fail(const char* message) {
  diags_.error(cur_.loc, "syntax", message);
  throw ParseError{};
}

void Parser::synchronize() {
  // Skip to a statement boundary.
  while (!at(TokKind::Eof)) {
    if (accept(TokKind::Semi)) return;
    if (at(TokKind::RBrace)) return;
    if (at(TokKind::KwProc) || at(TokKind::KwVar) || at(TokKind::KwBegin)) {
      return;
    }
    bump();
  }
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

std::unique_ptr<Program> Parser::parseProgram() {
  auto program = std::make_unique<Program>();
  while (!at(TokKind::Eof)) {
    try {
      if (at(TokKind::KwProc)) {
        program->procs.push_back(parseProc(/*nested=*/false));
      } else if (at(TokKind::KwConfig)) {
        program->configs.push_back(parseConfigDecl());
      } else {
        fail("expected 'proc' or 'config' at top level");
      }
    } catch (ParseError&) {
      std::size_t before = tokens_consumed_;
      synchronize();
      // Also consume a stray '}' so we make progress at top level.
      accept(TokKind::RBrace);
      // Recovery must always make progress: synchronize() can stop at a
      // statement-leading token (e.g. `var`) that is not valid at top level,
      // which would otherwise loop forever.
      if (tokens_consumed_ == before && !at(TokKind::Eof)) bump();
    }
  }
  return program;
}

std::unique_ptr<VarDeclStmt> Parser::parseConfigDecl() {
  SourceLoc loc = cur_.loc;
  expect(TokKind::KwConfig, "config declaration");
  DeclQual qual = DeclQual::ConfigConst;
  if (accept(TokKind::KwVar)) {
    qual = DeclQual::ConfigVar;
  } else {
    expect(TokKind::KwConst, "config declaration");
  }
  if (!at(TokKind::Identifier)) fail("expected identifier in config decl");
  auto decl = std::make_unique<VarDeclStmt>(internTok(cur_), loc);
  decl->qual = qual;
  bump();
  if (accept(TokKind::Colon)) decl->declared_type = parseType();
  if (accept(TokKind::Assign)) decl->init = parseExpr();
  expect(TokKind::Semi, "config declaration");
  return decl;
}

std::unique_ptr<ProcDecl> Parser::parseProc(bool nested) {
  SourceLoc loc = cur_.loc;
  expect(TokKind::KwProc, "procedure");
  if (!at(TokKind::Identifier)) fail("expected procedure name");
  auto proc = std::make_unique<ProcDecl>();
  proc->name = internTok(cur_);
  proc->loc = loc;
  proc->is_nested = nested;
  bump();
  expect(TokKind::LParen, "procedure parameter list");
  if (!at(TokKind::RParen)) {
    proc->params.push_back(parseParam());
    while (accept(TokKind::Comma)) proc->params.push_back(parseParam());
  }
  expect(TokKind::RParen, "procedure parameter list");
  if (accept(TokKind::Colon)) proc->return_type = parseType();
  if (!at(TokKind::LBrace)) fail("expected '{' to begin procedure body");
  StmtPtr body = parseBlock();
  proc->body.reset(static_cast<BlockStmt*>(body.release()));
  return proc;
}

Param Parser::parseParam() {
  Param p;
  p.loc = cur_.loc;
  if (accept(TokKind::KwRef)) {
    p.intent = ParamIntent::Ref;
  } else if (accept(TokKind::KwIn)) {
    p.intent = ParamIntent::In;
  } else if (at(TokKind::KwConst)) {
    bump();
    if (accept(TokKind::KwIn)) {
      p.intent = ParamIntent::ConstIn;
    } else if (accept(TokKind::KwRef)) {
      p.intent = ParamIntent::ConstRef;
    } else {
      p.intent = ParamIntent::ConstIn;  // bare `const` ≈ const in
    }
  }
  if (!at(TokKind::Identifier)) fail("expected parameter name");
  p.name = internTok(cur_);
  bump();
  expect(TokKind::Colon, "parameter");
  p.type = parseType();
  return p;
}

Type Parser::parseType() {
  Type t;
  if (accept(TokKind::KwBarrier)) {
    // `barrier` is a complete type: no base scalar follows.
    t.conc = ConcKind::Barrier;
    t.base = BaseType::Int;
    return t;
  }
  if (accept(TokKind::KwSync)) {
    t.conc = ConcKind::Sync;
  } else if (accept(TokKind::KwSingle)) {
    t.conc = ConcKind::Single;
  } else if (accept(TokKind::KwAtomic)) {
    t.conc = ConcKind::Atomic;
  }
  if (accept(TokKind::KwInt)) {
    t.base = BaseType::Int;
  } else if (accept(TokKind::KwBool)) {
    t.base = BaseType::Bool;
  } else if (accept(TokKind::KwReal)) {
    t.base = BaseType::Real;
  } else if (accept(TokKind::KwString)) {
    t.base = BaseType::String;
  } else if (accept(TokKind::KwVoid)) {
    t.base = BaseType::Void;
  } else {
    fail("expected type name");
  }
  return t;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

StmtPtr Parser::parseBlock() {
  SourceLoc loc = cur_.loc;
  expect(TokKind::LBrace, "block");
  auto block = std::make_unique<BlockStmt>(loc);
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    try {
      block->stmts.push_back(parseStmt());
    } catch (ParseError&) {
      synchronize();
    }
  }
  block->rbrace_loc = cur_.loc;
  expect(TokKind::RBrace, "block");
  return block;
}

StmtPtr Parser::parseControlledStmt() {
  if (at(TokKind::LBrace)) return parseBlock();
  return parseStmt();
}

StmtPtr Parser::parseStmt() {
  SourceLoc loc = cur_.loc;
  switch (cur_.kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::KwVar:
      bump();
      return parseVarDecl(DeclQual::Var, loc);
    case TokKind::KwConst:
      bump();
      return parseVarDecl(DeclQual::Const, loc);
    case TokKind::KwConfig: {
      bump();
      DeclQual qual = DeclQual::ConfigConst;
      if (accept(TokKind::KwVar)) {
        qual = DeclQual::ConfigVar;
      } else {
        expect(TokKind::KwConst, "config declaration");
      }
      return parseVarDecl(qual, loc);
    }
    case TokKind::KwBarrier: {
      // `barrier b;` — declaration sugar for `var b: barrier;`.
      bump();
      if (!at(TokKind::Identifier)) fail("expected barrier name");
      auto decl = std::make_unique<VarDeclStmt>(internTok(cur_), loc);
      decl->qual = DeclQual::Var;
      decl->declared_type = Type{BaseType::Int, ConcKind::Barrier};
      bump();
      expect(TokKind::Semi, "barrier declaration");
      return decl;
    }
    case TokKind::KwBegin:
      bump();
      return parseBegin(loc);
    case TokKind::KwSync:
      bump();
      return parseSync(loc);
    case TokKind::Identifier:
      if (cur_.text == "cobegin") {
        bump();
        return parseCobegin(loc);
      }
      if (cur_.text == "coforall") {
        bump();
        return parseCoforall(loc);
      }
      return parseAssignOrExprStmt();
    case TokKind::KwIf:
      bump();
      return parseIf(loc);
    case TokKind::KwWhile:
      bump();
      return parseWhile(loc);
    case TokKind::KwFor:
      bump();
      return parseFor(loc);
    case TokKind::KwReturn:
      bump();
      return parseReturn(loc);
    case TokKind::KwProc: {
      auto proc = parseProc(/*nested=*/true);
      return std::make_unique<ProcDeclStmt>(std::move(proc), loc);
    }
    default:
      return parseAssignOrExprStmt();
  }
}

StmtPtr Parser::parseVarDecl(DeclQual qual, SourceLoc loc) {
  if (!at(TokKind::Identifier)) fail("expected variable name");
  auto decl = std::make_unique<VarDeclStmt>(internTok(cur_), loc);
  decl->qual = qual;
  bump();
  if (accept(TokKind::Colon)) decl->declared_type = parseType();
  if (accept(TokKind::Assign)) decl->init = parseExpr();
  if (!decl->declared_type && !decl->init) {
    fail("variable declaration needs a type or an initializer");
  }
  expect(TokKind::Semi, "variable declaration");
  return decl;
}

std::vector<WithItem> Parser::parseWithClause() {
  std::vector<WithItem> items;
  expect(TokKind::LParen, "with clause");
  do {
    WithItem item;
    item.loc = cur_.loc;
    if (accept(TokKind::KwRef)) {
      item.intent = TaskIntent::Ref;
    } else if (accept(TokKind::KwIn)) {
      item.intent = TaskIntent::In;
    } else if (at(TokKind::KwConst)) {
      bump();
      if (accept(TokKind::KwRef)) {
        item.intent = TaskIntent::ConstRef;
      } else {
        expect(TokKind::KwIn, "with clause intent");
        item.intent = TaskIntent::ConstIn;
      }
    } else {
      fail("expected task intent (ref/in/const in/const ref)");
    }
    if (!at(TokKind::Identifier)) fail("expected variable in with clause");
    item.name = internTok(cur_);
    bump();
    items.push_back(item);
  } while (accept(TokKind::Comma));
  expect(TokKind::RParen, "with clause");
  return items;
}

StmtPtr Parser::parseBegin(SourceLoc loc) {
  auto begin = std::make_unique<BeginStmt>(loc);
  if (accept(TokKind::KwWith)) begin->with_items = parseWithClause();
  begin->body = parseControlledStmt();
  return begin;
}

StmtPtr Parser::parseSync(SourceLoc loc) {
  StmtPtr body = parseControlledStmt();
  return std::make_unique<SyncBlockStmt>(std::move(body), loc);
}

StmtPtr Parser::parseCobegin(SourceLoc loc) {
  auto cobegin = std::make_unique<CobeginStmt>(loc);
  if (accept(TokKind::KwWith)) cobegin->with_items = parseWithClause();
  expect(TokKind::LBrace, "cobegin");
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    cobegin->stmts.push_back(parseStmt());
  }
  expect(TokKind::RBrace, "cobegin");
  return cobegin;
}

StmtPtr Parser::parseCoforall(SourceLoc loc) {
  auto stmt = std::make_unique<CoforallStmt>(loc);
  if (!at(TokKind::Identifier)) fail("expected coforall index name");
  stmt->index = internTok(cur_);
  bump();
  expect(TokKind::KwIn, "coforall loop");
  stmt->lo = parseExpr();
  expect(TokKind::DotDot, "coforall loop range");
  stmt->hi = parseExpr();
  if (accept(TokKind::KwWith)) stmt->with_items = parseWithClause();
  stmt->body = parseControlledStmt();
  return stmt;
}

StmtPtr Parser::parseIf(SourceLoc loc) {
  auto stmt = std::make_unique<IfStmt>(loc);
  if (accept(TokKind::LParen)) {
    stmt->cond = parseExpr();
    expect(TokKind::RParen, "if condition");
    stmt->then_body = parseControlledStmt();
  } else {
    stmt->cond = parseExpr();
    if (at(TokKind::KwThen)) {
      bump();
      stmt->then_body = parseStmt();
    } else {
      stmt->then_body = parseControlledStmt();
    }
  }
  if (accept(TokKind::KwElse)) stmt->else_body = parseControlledStmt();
  return stmt;
}

StmtPtr Parser::parseWhile(SourceLoc loc) {
  auto stmt = std::make_unique<WhileStmt>(loc);
  if (accept(TokKind::LParen)) {
    stmt->cond = parseExpr();
    expect(TokKind::RParen, "while condition");
    stmt->body = parseControlledStmt();
  } else {
    stmt->cond = parseExpr();
    if (at(TokKind::KwDo)) {
      bump();
      stmt->body = parseStmt();
    } else {
      stmt->body = parseControlledStmt();
    }
  }
  return stmt;
}

StmtPtr Parser::parseFor(SourceLoc loc) {
  auto stmt = std::make_unique<ForStmt>(loc);
  if (!at(TokKind::Identifier)) fail("expected loop index name");
  stmt->index = internTok(cur_);
  bump();
  expect(TokKind::KwIn, "for loop");
  stmt->lo = parseExpr();
  expect(TokKind::DotDot, "for loop range");
  stmt->hi = parseExpr();
  if (at(TokKind::KwDo)) {
    bump();
    stmt->body = parseStmt();
  } else {
    stmt->body = parseControlledStmt();
  }
  return stmt;
}

StmtPtr Parser::parseReturn(SourceLoc loc) {
  ExprPtr value;
  if (!at(TokKind::Semi)) value = parseExpr();
  expect(TokKind::Semi, "return statement");
  return std::make_unique<ReturnStmt>(std::move(value), loc);
}

StmtPtr Parser::parseAssignOrExprStmt() {
  SourceLoc loc = cur_.loc;
  // Lookahead: IDENT (=|+=|-=|*=) ...  is an assignment.
  if (at(TokKind::Identifier)) {
    TokKind nk = peekNext().kind;
    AssignOp op;
    bool is_assign = true;
    switch (nk) {
      case TokKind::Assign: op = AssignOp::Assign; break;
      case TokKind::PlusAssign: op = AssignOp::AddAssign; break;
      case TokKind::MinusAssign: op = AssignOp::SubAssign; break;
      case TokKind::StarAssign: op = AssignOp::MulAssign; break;
      default: is_assign = false; op = AssignOp::Assign; break;
    }
    if (is_assign) {
      auto stmt = std::make_unique<AssignStmt>(internTok(cur_), loc);
      stmt->op = op;
      bump();  // ident
      bump();  // operator
      stmt->value = parseExpr();
      expect(TokKind::Semi, "assignment");
      return stmt;
    }
  }
  ExprPtr e = parseExpr();
  expect(TokKind::Semi, "expression statement");
  return std::make_unique<ExprStmt>(std::move(e), loc);
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parseExpr() { return parseOr(); }

ExprPtr Parser::parseOr() {
  ExprPtr lhs = parseAnd();
  while (at(TokKind::PipePipe)) {
    SourceLoc loc = cur_.loc;
    bump();
    lhs = std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(lhs), parseAnd(),
                                       loc);
  }
  return lhs;
}

ExprPtr Parser::parseAnd() {
  ExprPtr lhs = parseEquality();
  while (at(TokKind::AmpAmp)) {
    SourceLoc loc = cur_.loc;
    bump();
    lhs = std::make_unique<BinaryExpr>(BinaryOp::And, std::move(lhs),
                                       parseEquality(), loc);
  }
  return lhs;
}

ExprPtr Parser::parseEquality() {
  ExprPtr lhs = parseRelational();
  for (;;) {
    BinaryOp op;
    if (at(TokKind::EqEq)) {
      op = BinaryOp::Eq;
    } else if (at(TokKind::NotEq)) {
      op = BinaryOp::Ne;
    } else {
      return lhs;
    }
    SourceLoc loc = cur_.loc;
    bump();
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), parseRelational(),
                                       loc);
  }
}

ExprPtr Parser::parseRelational() {
  ExprPtr lhs = parseAdditive();
  for (;;) {
    BinaryOp op;
    if (at(TokKind::Less)) {
      op = BinaryOp::Lt;
    } else if (at(TokKind::LessEq)) {
      op = BinaryOp::Le;
    } else if (at(TokKind::Greater)) {
      op = BinaryOp::Gt;
    } else if (at(TokKind::GreaterEq)) {
      op = BinaryOp::Ge;
    } else {
      return lhs;
    }
    SourceLoc loc = cur_.loc;
    bump();
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), parseAdditive(),
                                       loc);
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr lhs = parseMultiplicative();
  for (;;) {
    BinaryOp op;
    if (at(TokKind::Plus)) {
      op = BinaryOp::Add;
    } else if (at(TokKind::Minus)) {
      op = BinaryOp::Sub;
    } else {
      return lhs;
    }
    SourceLoc loc = cur_.loc;
    bump();
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs),
                                       parseMultiplicative(), loc);
  }
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr lhs = parseUnary();
  for (;;) {
    BinaryOp op;
    if (at(TokKind::Star)) {
      op = BinaryOp::Mul;
    } else if (at(TokKind::Slash)) {
      op = BinaryOp::Div;
    } else if (at(TokKind::Percent)) {
      op = BinaryOp::Mod;
    } else {
      return lhs;
    }
    SourceLoc loc = cur_.loc;
    bump();
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), parseUnary(), loc);
  }
}

ExprPtr Parser::parseUnary() {
  if (at(TokKind::Minus)) {
    SourceLoc loc = cur_.loc;
    bump();
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary(), loc);
  }
  if (at(TokKind::Bang)) {
    SourceLoc loc = cur_.loc;
    bump();
    return std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary(), loc);
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  // identifier-headed postfix forms: call, method call, ++/--
  if (at(TokKind::Identifier)) {
    Token ident = cur_;
    TokKind nk = peekNext().kind;
    if (nk == TokKind::LParen) {
      bump();  // ident
      SourceLoc loc = ident.loc;
      bump();  // (
      std::vector<ExprPtr> args;
      if (!at(TokKind::RParen)) {
        args.push_back(parseExpr());
        while (accept(TokKind::Comma)) args.push_back(parseExpr());
      }
      expect(TokKind::RParen, "call");
      return std::make_unique<CallExpr>(internTok(ident), std::move(args), loc);
    }
    if (nk == TokKind::Dot) {
      bump();  // ident
      SourceLoc loc = ident.loc;
      bump();  // .
      if (!at(TokKind::Identifier)) fail("expected method name after '.'");
      Symbol method = internTok(cur_);
      bump();
      expect(TokKind::LParen, "method call");
      std::vector<ExprPtr> args;
      if (!at(TokKind::RParen)) {
        args.push_back(parseExpr());
        while (accept(TokKind::Comma)) args.push_back(parseExpr());
      }
      expect(TokKind::RParen, "method call");
      return std::make_unique<MethodCallExpr>(internTok(ident), method,
                                              std::move(args), loc);
    }
    if (nk == TokKind::PlusPlus || nk == TokKind::MinusMinus) {
      bump();  // ident
      SourceLoc loc = ident.loc;
      bool inc = at(TokKind::PlusPlus);
      bump();  // ++/--
      return std::make_unique<PostIncDecExpr>(internTok(ident), inc, loc);
    }
    bump();
    return std::make_unique<IdentExpr>(internTok(ident), ident.loc);
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc loc = cur_.loc;
  switch (cur_.kind) {
    case TokKind::IntLit: {
      auto e = std::make_unique<IntLitExpr>(cur_.int_value, loc);
      bump();
      return e;
    }
    case TokKind::RealLit: {
      auto e = std::make_unique<RealLitExpr>(cur_.real_value, loc);
      bump();
      return e;
    }
    case TokKind::KwTrue:
      bump();
      return std::make_unique<BoolLitExpr>(true, loc);
    case TokKind::KwFalse:
      bump();
      return std::make_unique<BoolLitExpr>(false, loc);
    case TokKind::StringLit: {
      // strip quotes; keep escapes verbatim (values are opaque to analysis)
      std::string_view text = cur_.text;
      if (text.size() >= 2) text = text.substr(1, text.size() - 2);
      auto e = std::make_unique<StringLitExpr>(std::string(text), loc);
      bump();
      return e;
    }
    case TokKind::LParen: {
      bump();
      ExprPtr e = parseExpr();
      expect(TokKind::RParen, "parenthesized expression");
      return e;
    }
    default:
      fail("expected expression");
  }
}

std::unique_ptr<Program> parseString(SourceManager& sm,
                                     StringInterner& interner,
                                     DiagnosticEngine& diags, std::string name,
                                     std::string source) {
  FileId file = sm.addBuffer(std::move(name), std::move(source));
  Parser parser(sm, file, interner, diags);
  return parser.parseProgram();
}

}  // namespace cuaf
