// Runtime values and memory cells for the mini-Chapel interpreter.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/support/id_types.h"

namespace cuaf::rt {

using Value = std::variant<std::int64_t, double, bool, std::string>;

[[nodiscard]] std::int64_t asInt(const Value& v);
[[nodiscard]] double asReal(const Value& v);
[[nodiscard]] bool asBool(const Value& v);
[[nodiscard]] std::string asString(const Value& v);

enum class SyncState : std::uint8_t { Empty, Full };

/// Phaser-style rendezvous state of a `barrier` cell (extension,
/// docs/EXTENSIONS_SYNC.md). Tasks register at declaration or at spawn
/// (children inherit every barrier their parent is registered on) and stay
/// registered until they finish; a rendezvous fires when every live
/// registered task has arrived. `passed` holds tasks released by the last
/// rendezvous that have not yet consumed the release at their wait site.
struct BarrierState {
  std::vector<std::size_t> registered;
  std::vector<std::size_t> arrived;
  std::vector<std::size_t> passed;
  std::uint32_t generation = 0;
};

/// One memory location. Scope exit marks the cell dead but the storage
/// remains (a tombstone), so late accesses are detectable instead of UB —
/// this is the oracle's "use after free" signal.
struct Cell {
  Value value = std::int64_t{0};
  bool alive = true;
  bool is_sync = false;       ///< sync/single: exempt from scope death
                              ///< ("universally visible", paper §II)
  SyncState sync_state = SyncState::Empty;
  /// Rendezvous bookkeeping; non-null exactly for barrier cells.
  std::shared_ptr<BarrierState> barrier;
  VarId var;                  ///< declaring variable (for reporting)
  TaskId creator;             ///< task that allocated the cell
  std::uint32_t uid = 0;      ///< unique per interpreter instance (observers
                              ///< key per-cell state on it; survives death)
};

using CellPtr = std::shared_ptr<Cell>;

/// Lexical environment: persistent linked frames so spawned tasks capture
/// their defining environment by reference.
struct EnvNode {
  std::shared_ptr<EnvNode> parent;
  // Small linear map: scopes hold a handful of variables.
  std::vector<std::pair<VarId, CellPtr>> bindings;

  [[nodiscard]] CellPtr lookup(VarId var) const {
    for (const EnvNode* e = this; e != nullptr; e = e->parent.get()) {
      for (auto it = e->bindings.rbegin(); it != e->bindings.rend(); ++it) {
        if (it->first == var) return it->second;
      }
    }
    return nullptr;
  }
};

using EnvPtr = std::shared_ptr<EnvNode>;

}  // namespace cuaf::rt
