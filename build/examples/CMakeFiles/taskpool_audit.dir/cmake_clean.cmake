file(REMOVE_RECURSE
  "CMakeFiles/taskpool_audit.dir/taskpool_audit.cpp.o"
  "CMakeFiles/taskpool_audit.dir/taskpool_audit.cpp.o.d"
  "taskpool_audit"
  "taskpool_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskpool_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
