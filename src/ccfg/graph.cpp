#include "src/ccfg/graph.h"

namespace cuaf::ccfg {

NodeId Graph::addNode(TaskId task) {
  Node n;
  n.id = NodeId(static_cast<NodeId::value_type>(nodes_.size()));
  n.task = task;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

TaskId Graph::addTask(TaskId parent, SourceLoc loc) {
  Task t;
  t.id = TaskId(static_cast<TaskId::value_type>(tasks_.size()));
  t.parent = parent;
  t.loc = loc;
  tasks_.push_back(std::move(t));
  return tasks_.back().id;
}

AccessId Graph::addAccess(OvUse use) {
  use.id = AccessId(static_cast<AccessId::value_type>(accesses_.size()));
  accesses_.push_back(use);
  return accesses_.back().id;
}

VarId Graph::addCloneVar(VarId original) {
  // Clones of clones resolve to the root original.
  VarId orig = underlying(original);
  clone_origin_.push_back(orig);
  return VarId(static_cast<VarId::value_type>(sema_->varCount() +
                                              clone_origin_.size() - 1));
}

VarId Graph::underlying(VarId v) const {
  while (v.valid() && v.index() >= sema_->varCount()) {
    v = clone_origin_.at(v.index() - sema_->varCount());
  }
  return v;
}

std::string Graph::varName(VarId v) const {
  if (!v.valid()) return "<invalid>";
  return std::string(sema_->interner().text(varInfo(v).name));
}

SyncVarInfo& Graph::syncVar(VarId v) {
  auto [it, inserted] = sync_vars_.try_emplace(v);
  if (inserted) {
    it->second.var = v;
    const VarInfo& info = varInfo(v);
    it->second.is_single = info.type.conc == ConcKind::Single;
    it->second.initially_full = info.sync_init_full;
  }
  return it->second;
}

void Graph::finalizeAccessIndex() {
  live_accesses_.clear();
  dense_access_index_.assign(accesses_.size(), kNoDenseIndex);
  for (const OvUse& a : accesses_) {
    if (a.pre_safe) continue;
    dense_access_index_[a.id.index()] =
        static_cast<std::uint32_t>(live_accesses_.size());
    live_accesses_.push_back(a.id);
  }
}

void Graph::computeBarrierReachability() {
  if (barrier_waits_.empty()) return;
  // Spawn edge inversion: entry node of a spawned task -> spawning node.
  std::unordered_map<std::uint32_t, std::vector<NodeId>> spawn_preds;
  for (const Node& n : nodes_) {
    for (TaskId t : n.spawns) {
      spawn_preds[tasks_[t.index()].entry.index()].push_back(n.id);
    }
  }
  for (const auto& [var, waits] : barrier_waits_) {
    std::vector<char> reach(nodes_.size(), 0);
    std::vector<NodeId> stack(waits.begin(), waits.end());
    while (!stack.empty()) {
      NodeId nid = stack.back();
      stack.pop_back();
      if (reach[nid.index()] != 0) continue;
      reach[nid.index()] = 1;
      for (NodeId p : nodes_[nid.index()].preds) stack.push_back(p);
      if (auto it = spawn_preds.find(nid.index()); it != spawn_preds.end()) {
        for (NodeId p : it->second) stack.push_back(p);
      }
    }
    barrier_reach_[var] = std::move(reach);
  }
}

void Graph::computePreds() {
  for (Node& n : nodes_) n.preds.clear();
  for (const Node& n : nodes_) {
    for (NodeId s : n.succs) {
      nodes_[s.index()].preds.push_back(n.id);
    }
  }
}

}  // namespace cuaf::ccfg
