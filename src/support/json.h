// Minimal JSON string escaping shared by every component that renders JSON
// by hand (analysis report, witness engine, service protocol).
#pragma once

#include <string>

namespace cuaf {

/// Escapes a string for embedding in a JSON literal.
[[nodiscard]] std::string jsonEscape(const std::string& s);

}  // namespace cuaf
