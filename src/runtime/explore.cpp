#include "src/runtime/explore.h"

#include <algorithm>
#include <unordered_map>

#include "src/support/rng.h"
#include "src/support/thread_pool.h"

namespace cuaf::rt {

DriveOutcome driveSchedule(Interp& interp, std::size_t max_steps,
                           const SchedulePicker& pick,
                           const Deadline& deadline,
                           const char* deadline_site) {
  DriveOutcome out;
  while (!interp.allFinished()) {
    if (interp.stepsExecuted() > max_steps) {
      out.step_limited = true;
      break;
    }
    if (deadline_site != nullptr) {
      if (StopReason stop = deadline.check(deadline_site);
          stop != StopReason::None) {
        out.stopped = stop;
        break;
      }
    }

    // Eagerly run tasks whose next step is invisible (they commute).
    bool advanced = false;
    for (std::size_t t = 0; t < interp.taskCount(); ++t) {
      while (!interp.taskFinished(t) && !interp.nextStepVisible(t) &&
             interp.canStep(t)) {
        if (interp.step(t) == StepResult::Blocked) break;
        advanced = true;
        if (interp.stepsExecuted() > max_steps) {
          out.step_limited = true;
          break;
        }
      }
      if (out.step_limited) break;
    }
    if (out.step_limited) break;
    if (interp.allFinished()) break;

    // Ready set: tasks that can take their (visible) next step now.
    std::vector<std::size_t> ready;
    for (std::size_t t = 0; t < interp.taskCount(); ++t) {
      if (!interp.taskFinished(t) && interp.canStep(t)) ready.push_back(t);
    }
    if (ready.empty()) {
      if (!advanced) {
        out.deadlocked = true;
        break;
      }
      continue;  // invisible progress may have unblocked someone next round
    }

    std::size_t picked = pick(interp, ready, out.choice_points);
    if (picked >= ready.size()) picked = ready.size() - 1;
    if (ready.size() > 1) {
      out.fanout.push_back(ready.size());
      ++out.choice_points;
    }
    interp.step(ready[picked]);
  }
  return out;
}

namespace {

/// splitmix64 finalizer: decorrelates per-shard RNG streams derived from
/// (seed, combo, shard) so shard count — not thread count — fixes the
/// random schedules explored.
std::uint64_t deriveSeed(std::uint64_t seed, std::size_t combo,
                         std::size_t shard) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (combo + 1) +
                    0xbf58476d1ce4e5b9ull * (shard + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct RunOutcome {
  std::vector<UafEvent> events;
  std::vector<UafEvent> observer_events;
  std::size_t choice_points = 0;
  /// Fan-out at each choice point along this run (for DFS successor
  /// enumeration).
  std::vector<std::size_t> fanout;
  bool deadlocked = false;
  bool step_limited = false;
  bool unsupported = false;
};

/// Runs one schedule: choices[i] selects among the ready tasks at the i-th
/// choice point; beyond the prefix, `rng` (if any) picks randomly, else the
/// first ready task is chosen — unless `victim` is set, in which case the
/// victim task is delayed as long as possible (adversarial schedule that
/// maximizes the window between a parent's scope exit and the victim's
/// remaining accesses).
RunOutcome runSchedule(const ir::Module& module, const Program& program,
                       ProcId entry, const ConfigAssignment& configs,
                       const std::vector<std::size_t>& choices, Rng* rng,
                       std::size_t max_steps, const ExploreOptions& opt,
                       std::size_t victim = static_cast<std::size_t>(-1)) {
  RunOutcome out;
  Interp interp(module, program, &configs);
  std::unique_ptr<ExecObserver> observer;
  if (opt.observer_factory) {
    observer = opt.observer_factory();
    interp.setObserver(observer.get());
  }
  interp.start(entry);

  auto pick = [&](Interp&, const std::vector<std::size_t>& ready,
                  std::size_t choice_point) -> std::size_t {
    if (ready.size() <= 1) return 0;
    if (choice_point < choices.size()) return choices[choice_point];
    if (rng != nullptr) return static_cast<std::size_t>(rng->below(ready.size()));
    if (victim != static_cast<std::size_t>(-1)) {
      // Delay the victim: pick the first ready non-victim task.
      for (std::size_t i = 0; i < ready.size(); ++i) {
        if (ready[i] != victim) return i;
      }
    }
    return 0;
  };
  DriveOutcome drive = driveSchedule(interp, max_steps, pick);

  out.choice_points = drive.choice_points;
  out.fanout = std::move(drive.fanout);
  out.deadlocked = drive.deadlocked;
  out.step_limited = drive.step_limited;
  out.events = interp.events();
  out.unsupported = interp.unsupportedFeature();
  if (observer != nullptr) out.observer_events = observer->flaggedSites();
  return out;
}

/// Ordered site set with an O(1) (loc, var) dedup index: discovery order is
/// preserved (first insertion wins a slot, later sightings OR is_write), so
/// merging shard sets in shard order yields one deterministic sequence.
class SiteIndex {
 public:
  void add(const UafEvent& e) {
    Key k{e.loc, e.var};
    auto [it, inserted] = index_.try_emplace(k, sites_.size());
    if (inserted) {
      sites_.push_back(e);
    } else {
      sites_[it->second].is_write = sites_[it->second].is_write || e.is_write;
    }
  }
  void addAll(const std::vector<UafEvent>& events) {
    for (const UafEvent& e : events) add(e);
  }
  [[nodiscard]] std::vector<UafEvent> take() { return std::move(sites_); }

 private:
  struct Key {
    SourceLoc loc;
    VarId var;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.loc.file.index();
      h = h * 0x100000001b3ull ^ k.loc.line;
      h = h * 0x100000001b3ull ^ k.loc.column;
      h = h * 0x100000001b3ull ^ k.var.index();
      return static_cast<std::size_t>(h);
    }
  };
  std::vector<UafEvent> sites_;
  std::unordered_map<Key, std::size_t, KeyHash> index_;
};

/// Result of one logical shard; merged into the ExploreResult in shard
/// order, independent of which thread ran it.
struct ShardOutcome {
  SiteIndex sites;
  SiteIndex observer_sites;
  std::size_t schedules = 0;
  std::size_t deadlocks = 0;
  bool truncated = false;
  bool unsupported = false;
  StopReason stopped = StopReason::None;

  void accumulate(const RunOutcome& run) {
    sites.addAll(run.events);
    observer_sites.addAll(run.observer_events);
    if (run.deadlocked) ++deadlocks;
    if (run.step_limited || run.unsupported) truncated = true;
    unsupported = unsupported || run.unsupported;
    ++schedules;
  }
};

/// Enqueue the deviating choice prefixes a finished run exposes: the run
/// itself covered the all-zeros default tail, so push prefixes that pad
/// with zeros up to `pos` and then deviate (alternatives 1..fan-1). Each
/// enqueued prefix names a distinct path.
void pushDeviations(const std::vector<std::size_t>& prefix,
                    const RunOutcome& run,
                    std::vector<std::vector<std::size_t>>& stack) {
  for (std::size_t pos = prefix.size(); pos < run.fanout.size(); ++pos) {
    std::size_t fan = run.fanout[pos];
    for (std::size_t alt = 1; alt < fan; ++alt) {
      std::vector<std::size_t> next = prefix;
      next.resize(pos, 0);
      next.push_back(alt);
      stack.push_back(std::move(next));
    }
  }
}

constexpr std::size_t kMaxVictims = 16;

}  // namespace

// Every bool config takes both values; other types keep their
// initializer/default.
std::vector<ConfigAssignment> enumerateConfigAssignments(
    const ir::Module& module, std::size_t max_combos) {
  const SemaModule& sema = *module.sema;
  std::vector<VarId> bool_configs;
  for (VarId v : sema.configVars()) {
    if (sema.var(v).type.base == BaseType::Bool &&
        sema.var(v).type.conc == ConcKind::None) {
      bool_configs.push_back(v);
    }
  }
  std::vector<ConfigAssignment> combos;
  std::size_t n = std::size_t{1} << std::min<std::size_t>(bool_configs.size(), 16);
  n = std::min(n, max_combos);
  if (n == 0) n = 1;
  for (std::size_t mask = 0; mask < n; ++mask) {
    ConfigAssignment a;
    for (std::size_t b = 0; b < bool_configs.size(); ++b) {
      a[bool_configs[b]] = ((mask >> b) & 1) != 0;
    }
    combos.push_back(std::move(a));
  }
  return combos;
}

namespace {

void exploreEntry(const ir::Module& module, const Program& program,
                  ProcId entry, const ExploreOptions& opt, ThreadPool& pool,
                  ExploreResult& result) {
  const std::size_t shards = std::max<std::size_t>(1, opt.shards);
  std::vector<ConfigAssignment> combos =
      enumerateConfigAssignments(module, opt.max_config_combos);
  if ((std::size_t{1} << std::min<std::size_t>(
           16, module.sema->configVars().size())) > combos.size() &&
      !module.sema->configVars().empty() &&
      combos.size() == opt.max_config_combos) {
    result.exhaustive = false;
  }

  SiteIndex merged;
  merged.addAll(result.uaf_sites);  // exploreAll accumulates across entries
  SiteIndex merged_observer;
  merged_observer.addAll(result.observer_sites);

  for (std::size_t combo_idx = 0; combo_idx < combos.size(); ++combo_idx) {
    const ConfigAssignment& configs = combos[combo_idx];

    // Root run: covers the all-zeros schedule and yields the first-level
    // deviation prefixes that seed the shards.
    std::vector<std::vector<std::size_t>> seeds;
    if (opt.max_schedules == 0) {
      result.exhaustive = false;
    } else {
      RunOutcome root = runSchedule(module, program, entry, configs, {},
                                    nullptr, opt.max_steps_per_run, opt);
      merged.addAll(root.events);
      merged_observer.addAll(root.observer_events);
      if (root.deadlocked) ++result.deadlock_schedules;
      if (root.step_limited || root.unsupported) {
        result.exhaustive = false;
        result.unsupported = result.unsupported || root.unsupported;
      }
      ++result.schedules_run;
      pushDeviations({}, root, seeds);
    }

    // Fixed logical partition: seed prefixes round-robin, the DFS budget
    // split evenly, and the delay-victim runs striped — all by shard index,
    // never by thread.
    std::size_t dfs_budget = opt.max_schedules > 0 ? opt.max_schedules - 1 : 0;
    std::vector<ShardOutcome> outcomes(shards);
    pool.parallelFor(shards, [&](std::size_t s) {
      ShardOutcome& out = outcomes[s];
      std::size_t budget = dfs_budget / shards + (s < dfs_budget % shards);

      // DFS over this shard's slice of the choice-prefix space (stateless
      // search, re-execution per run).
      std::vector<std::vector<std::size_t>> stack;
      for (std::size_t k = s; k < seeds.size(); k += shards) {
        stack.push_back(seeds[k]);
      }
      std::size_t runs = 0;
      while (!stack.empty()) {
        if (runs >= budget) {
          out.truncated = true;
          break;
        }
        if (StopReason stop = opt.deadline.check("explore.shard");
            stop != StopReason::None) {
          out.stopped = stop;
          out.truncated = true;
          break;
        }
        std::vector<std::size_t> prefix = std::move(stack.back());
        stack.pop_back();
        ++runs;
        RunOutcome run = runSchedule(module, program, entry, configs, prefix,
                                     nullptr, opt.max_steps_per_run, opt);
        out.accumulate(run);
        pushDeviations(prefix, run, stack);
      }

      // Adversarial delay-victim schedules: for each task index, one run
      // that postpones that task as long as possible (catches accesses
      // racing the parent's scope exit even when the DFS was truncated).
      for (std::size_t victim = 1 + s; victim <= kMaxVictims;
           victim += shards) {
        if (StopReason stop = opt.deadline.check("explore.shard");
            stop != StopReason::None) {
          out.stopped = stop;
          out.truncated = true;
          break;
        }
        RunOutcome run = runSchedule(module, program, entry, configs, {},
                                     nullptr, opt.max_steps_per_run, opt,
                                     victim);
        out.accumulate(run);
      }
    });

    // Deterministic aggregation: shard order, not completion order.
    for (ShardOutcome& out : outcomes) {
      merged.addAll(out.sites.take());
      merged_observer.addAll(out.observer_sites.take());
      result.schedules_run += out.schedules;
      result.deadlock_schedules += out.deadlocks;
      if (out.truncated) result.exhaustive = false;
      result.unsupported = result.unsupported || out.unsupported;
      if (out.stopped != StopReason::None && result.stopped == StopReason::None) {
        result.stopped = out.stopped;
      }
    }
    if (result.stopped != StopReason::None) break;  // deadline: stop combos

    // Randomized top-up when exploration was truncated: every shard owns an
    // independent RNG stream derived from (seed, combo, shard).
    if (!result.exhaustive && opt.random_schedules > 0) {
      std::vector<ShardOutcome> random_outcomes(shards);
      pool.parallelFor(shards, [&](std::size_t s) {
        ShardOutcome& out = random_outcomes[s];
        std::size_t runs = opt.random_schedules / shards +
                           (s < opt.random_schedules % shards);
        Rng rng(deriveSeed(opt.seed, combo_idx, s));
        for (std::size_t i = 0; i < runs; ++i) {
          if (StopReason stop = opt.deadline.check("explore.shard");
              stop != StopReason::None) {
            out.stopped = stop;
            break;
          }
          RunOutcome run = runSchedule(module, program, entry, configs, {},
                                       &rng, opt.max_steps_per_run, opt);
          out.accumulate(run);
        }
      });
      for (ShardOutcome& out : random_outcomes) {
        merged.addAll(out.sites.take());
        merged_observer.addAll(out.observer_sites.take());
        result.schedules_run += out.schedules;
        result.deadlock_schedules += out.deadlocks;
        result.unsupported = result.unsupported || out.unsupported;
        if (out.stopped != StopReason::None &&
            result.stopped == StopReason::None) {
          result.stopped = out.stopped;
        }
      }
      if (result.stopped != StopReason::None) break;
    }
  }

  result.uaf_sites = merged.take();
  result.observer_sites = merged_observer.take();
}

}  // namespace

bool ExploreResult::sawUafAt(SourceLoc loc) const {
  return std::any_of(uaf_sites.begin(), uaf_sites.end(),
                     [&](const UafEvent& e) { return e.loc == loc; });
}

bool ExploreResult::observerFlaggedAt(SourceLoc loc) const {
  return std::any_of(observer_sites.begin(), observer_sites.end(),
                     [&](const UafEvent& e) { return e.loc == loc; });
}

ExploreResult explore(const ir::Module& module, const Program& program,
                      ProcId entry, const ExploreOptions& options) {
  ExploreResult result;
  ThreadPool pool(ThreadPool::workersForJobs(options.jobs));
  exploreEntry(module, program, entry, options, pool, result);
  return result;
}

ExploreResult exploreAll(const ir::Module& module, const Program& program,
                         const ExploreOptions& options) {
  ExploreResult result;
  ThreadPool pool(ThreadPool::workersForJobs(options.jobs));
  for (const auto& proc : module.procs) {
    if (proc->is_nested) continue;
    if (!proc->decl->params.empty()) continue;  // needs caller context
    exploreEntry(module, program, proc->id, options, pool, result);
    if (result.stopped != StopReason::None) break;
  }
  return result;
}

}  // namespace cuaf::rt
