// The analysis daemon: serves newline-delimited JSON requests over stdio or
// a Unix domain socket, dispatching batch items onto a fixed ThreadPool and
// answering from the content-addressed ResultCache when possible.
//
// Determinism contract (the service extends PR 1's discipline): responses —
// minus the volatile "cached"/"elapsed_us" fields, see stripVolatile() —
// are byte-identical between cold (miss) and warm (hit) paths and for any
// `jobs` value. Batch items are index-addressed: each job writes only its
// own result slot and the response is assembled in item order.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "src/service/cache.h"
#include "src/service/disk_cache.h"
#include "src/service/protocol.h"
#include "src/service/supervisor.h"
#include "src/support/thread_pool.h"

namespace cuaf::service {

struct ServerOptions {
  /// Worker threads for analyze_batch fan-out; <=1 runs inline (serial).
  std::size_t jobs = 1;
  /// Result-cache byte budget (payload + bookkeeping overhead).
  std::size_t cache_budget_bytes = 64u << 20;
  /// Requests longer than this are answered with "oversized_request".
  std::size_t max_request_bytes = 8u << 20;
  /// Admission-control bound on analysis items in flight at once (across
  /// concurrent handleLine callers); a request that would exceed it is
  /// rejected whole with an "overloaded" error instead of queueing without
  /// bound.
  std::size_t max_queued_items = 256;
  /// Process-isolated worker pool size; 0 (the default) analyzes in-process.
  /// With workers, a crashing or hung analysis kills only a forked worker:
  /// the daemon reports a structured "worker_crashed" error and keeps
  /// serving (src/service/supervisor.h).
  std::size_t workers = 0;
  /// Worker crashes one input may cause before it is quarantined — further
  /// requests for it are answered instantly with a "quarantined" error, no
  /// worker forked. Only meaningful with workers > 0.
  std::uint64_t quarantine_after = 2;
  /// Extra wait past a request deadline before a silent worker is presumed
  /// hung and SIGKILLed.
  std::uint64_t worker_grace_ms = 2000;
  /// Durable result-cache directory (src/service/disk_cache.h). Completed
  /// analyses are appended there and recovered into the in-memory cache at
  /// construction; empty disables persistence.
  std::string cache_dir;
  /// listen(2) backlog for the socket front end (was hardcoded to 8).
  int backlog = 64;
  /// Identity under `chpl-uaf-serve --shards N`: this daemon is shard
  /// `shard_id` of `shard_count`. 0 shard_count = unsharded; identity is
  /// reported through `stats` so load tests can reconcile per-shard
  /// counters (docs/SERVICE.md "Event loop & sharding").
  std::size_t shard_id = 0;
  std::size_t shard_count = 0;
  /// Path of the shard supervisor's cluster status file; when set, `stats`
  /// embeds its contents as the "cluster" object (degraded-cluster state,
  /// per-shard pid/state/respawns; src/service/shard_supervisor.h). Empty
  /// disables the field.
  std::string cluster_status_path;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one request line, returns one response line (no trailing
  /// newline). Never throws on malformed input — errors come back as
  /// structured responses. The unit the stream/socket loops and all tests
  /// drive. Thread-safe: the soak suite hammers one Server from many client
  /// threads, so every counter below is atomic and analysis faults (deadline
  /// expiry, injected allocation failures) are converted to structured item
  /// errors before they can cross a thread boundary.
  [[nodiscard]] std::string handleLine(std::string_view line);

  /// Serves `in` until EOF or a shutdown request; one response per line on
  /// `out`, flushed per request. Returns the number of requests answered.
  std::size_t serveStream(std::istream& in, std::ostream& out);

  /// Binds a Unix domain socket at `path` (unlinking any stale file) and
  /// serves every connected client concurrently on an epoll event loop
  /// (src/net/): nonblocking sockets, incremental NDJSON framing,
  /// slow-client backpressure, graceful half-close. Requests are
  /// dispatched to a small dispatcher-thread pool and may complete out of
  /// order internally, but each connection's responses are written in
  /// request order — so responses are byte-identical to the serial
  /// one-line-at-a-time loop for any concurrency level. Returns the number
  /// of requests answered (after a shutdown request drains), or throws
  /// std::runtime_error when the socket cannot be created.
  /// `path` may also be a "host:port" TCP address (src/net/address.h).
  std::size_t serveSocket(const std::string& path);

  /// True once a shutdown request has been handled.
  [[nodiscard]] bool shutdownRequested() const { return shutdown_; }

  [[nodiscard]] const ResultCache& cache() const { return cache_; }

  /// Non-null when workers are configured. Crash tests use alivePids() to
  /// SIGKILL real workers from outside.
  [[nodiscard]] Supervisor* supervisor() { return supervisor_.get(); }

  /// Non-null when cache_dir is configured.
  [[nodiscard]] DiskCache* diskCache() { return disk_.get(); }

 private:
  [[nodiscard]] std::string handleAnalyze(const Request& request);
  [[nodiscard]] std::string handleBatch(const Request& request);
  [[nodiscard]] std::string handleExplain(const Request& request);
  [[nodiscard]] std::string handleStats(const Request& request);
  /// Reads and validates the supervisor's cluster status file; "" when
  /// unconfigured, unreadable, or not one JSON object (torn write).
  [[nodiscard]] std::string readClusterStatus() const;
  /// Analyzes one item through the cache; snapshot render is shared by the
  /// single and batch paths. Never throws: analysis faults become item
  /// errors. Items that hit the deadline are reported but never cached.
  /// `request`/`start` carry the deadline budget and failpoint spec to the
  /// worker dispatch path (batch items share one absolute expiry).
  [[nodiscard]] ItemResult analyzeItem(
      const SourceItem& item, const AnalysisOptions& options,
      const Request& request, std::chrono::steady_clock::time_point start);
  /// Dispatches one cache-missed item to a forked worker and converts the
  /// outcome — snapshot, structured error, or worker death — to an
  /// ItemResult. Only called when workers are configured.
  [[nodiscard]] ItemResult dispatchToWorker(
      const SourceItem& item, ItemResult result, const Request& request,
      std::chrono::steady_clock::time_point start);
  /// Builds the per-request effective options (deadline applied).
  [[nodiscard]] static AnalysisOptions effectiveOptions(const Request& request);
  /// Inserts a completed snapshot payload into the in-memory cache and,
  /// when configured, the durable disk cache.
  void storeSnapshot(std::uint64_t key, std::string payload);
  /// Reserves `items` admission slots; false (and ++overloaded_) when the
  /// bound would be exceeded.
  [[nodiscard]] bool admit(std::size_t items);
  void release(std::size_t items);

  ServerOptions options_;
  ResultCache cache_;
  Quarantine quarantine_;
  std::unique_ptr<DiskCache> disk_;  ///< null unless cache_dir configured
  /// Constructed before pool_ (and its threads) so the first worker forks
  /// happen while the process is still single-threaded.
  std::unique_ptr<Supervisor> supervisor_;  ///< null unless workers > 0
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> analyzed_{0};  ///< pipeline runs (cache misses)
  std::atomic<std::uint64_t> timeouts_{0};  ///< items stopped by deadline
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> worker_crashes_{0};  ///< input-blamed deaths
  std::atomic<std::uint64_t> quarantined_{0};     ///< items answered as such
  std::atomic<std::size_t> in_flight_items_{0};
  // Socket front-end counters (zero when serving stdio): maintained by the
  // event loop, read by `stats` from dispatcher threads.
  std::atomic<std::uint64_t> conns_accepted_{0};
  std::atomic<std::uint64_t> conns_closed_{0};
  /// High-water mark of any single connection's pipelined-request depth
  /// (frames read but not yet answered).
  std::atomic<std::uint64_t> pipeline_depth_hwm_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace cuaf::service
