// Semantic analysis: scope tree, symbol resolution, capture analysis,
// light type inference, and semantic checks for the mini-Chapel subset.
//
// Sema writes resolved ids into the AST in place and produces a SemaModule
// with the variable/scope/procedure tables the later phases consume.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/ast/ast.h"
#include "src/support/diagnostics.h"
#include "src/support/interner.h"

namespace cuaf {

enum class ScopeKind { Module, Proc, Block, BeginTask, SyncBlock, Loop, Cobegin };

struct ScopeInfo {
  ScopeId id;
  ScopeId parent;      ///< invalid for the module scope
  ScopeKind kind = ScopeKind::Block;
  ProcId proc;         ///< enclosing procedure (invalid for module scope)
  SourceLoc loc;
};

struct VarInfo {
  VarId id;
  Symbol name;
  Type type;
  ScopeId scope;       ///< declaring scope
  SourceLoc loc;
  DeclQual qual = DeclQual::Var;
  bool is_param = false;
  bool is_task_copy = false;  ///< shadow created by a `with (in x)` intent
  VarId copied_from;          ///< for task copies: the captured outer var
  bool sync_init_full = false;  ///< sync/single var explicitly initialized
};

struct ProcInfo {
  ProcId id;
  Symbol name;
  ProcDecl* decl = nullptr;
  ScopeId body_scope;
  ProcId lexical_parent;  ///< for nested procs; invalid for top-level
  bool is_nested = false;
};

/// Captured outer variable of a `begin` / `cobegin` task.
struct CaptureInfo {
  TaskIntent intent = TaskIntent::Ref;
  VarId outer;  ///< the variable in the enclosing scope
  VarId local;  ///< == outer for ref intents; fresh shadow for in intents
  SourceLoc loc;
};

/// Result of semantic analysis over one Program.
class SemaModule {
 public:
  [[nodiscard]] const VarInfo& var(VarId id) const { return vars_.at(id.index()); }
  [[nodiscard]] const ScopeInfo& scope(ScopeId id) const {
    return scopes_.at(id.index());
  }
  [[nodiscard]] const ProcInfo& proc(ProcId id) const {
    return procs_.at(id.index());
  }
  [[nodiscard]] std::size_t varCount() const { return vars_.size(); }
  [[nodiscard]] std::size_t scopeCount() const { return scopes_.size(); }
  [[nodiscard]] std::size_t procCount() const { return procs_.size(); }

  /// Captures recorded for a begin/cobegin statement (keyed by AST node).
  [[nodiscard]] const std::vector<CaptureInfo>* captures(const Stmt* stmt) const {
    auto it = captures_.find(stmt);
    return it == captures_.end() ? nullptr : &it->second;
  }

  /// The nearest enclosing BeginTask/Cobegin scope of `s`, or invalid if the
  /// chain reaches the proc/module scope first.
  [[nodiscard]] ScopeId enclosingTaskScope(ScopeId s) const;

  /// True if scope `inner` is lexically within `outer` (inclusive).
  [[nodiscard]] bool scopeContains(ScopeId outer, ScopeId inner) const;

  /// All top-level procedures in declaration order.
  [[nodiscard]] const std::vector<ProcId>& topLevelProcs() const {
    return top_level_procs_;
  }

  /// Module-scope config variables.
  [[nodiscard]] const std::vector<VarId>& configVars() const {
    return config_vars_;
  }

  /// Call sites of `callee` (proc ids of callers paired with whether the
  /// call site is lexically inside a sync block).
  struct CallSite {
    ProcId caller;
    SourceLoc loc;
    bool in_sync_block = false;
  };
  [[nodiscard]] const std::vector<CallSite>& callSites(ProcId callee) const;

  /// Scope created by a scope-introducing statement (BlockStmt, BeginStmt,
  /// SyncBlockStmt, CobeginStmt, ForStmt), or invalid if none was recorded.
  [[nodiscard]] ScopeId scopeOf(const Stmt* stmt) const {
    auto it = stmt_scopes_.find(stmt);
    return it == stmt_scopes_.end() ? ScopeId{} : it->second;
  }

  [[nodiscard]] const StringInterner& interner() const { return *interner_; }

 private:
  friend class Sema;
  std::vector<VarInfo> vars_;
  std::vector<ScopeInfo> scopes_;
  std::vector<ProcInfo> procs_;
  std::vector<ProcId> top_level_procs_;
  std::vector<VarId> config_vars_;
  std::unordered_map<const Stmt*, std::vector<CaptureInfo>> captures_;
  std::unordered_map<ProcId, std::vector<CallSite>> call_sites_;
  std::unordered_map<const Stmt*, ScopeId> stmt_scopes_;
  const StringInterner* interner_ = nullptr;
};

class Sema {
 public:
  Sema(StringInterner& interner, DiagnosticEngine& diags);

  /// Runs semantic analysis. The returned module references the (annotated)
  /// program, which must outlive it. Errors are reported to the diagnostic
  /// engine; the module is still usable for the error-free parts.
  std::unique_ptr<SemaModule> run(Program& program);

 private:
  struct LexicalScope {
    ScopeId id;
    std::unordered_map<Symbol, VarId> vars;
    std::unordered_map<Symbol, ProcId> procs;
  };

  ScopeId pushScope(ScopeKind kind, SourceLoc loc);
  void popScope();
  [[nodiscard]] ScopeId currentScope() const;
  [[nodiscard]] ProcId currentProc() const;

  VarId declareVar(Symbol name, Type type, SourceLoc loc, DeclQual qual,
                   bool is_param);
  std::optional<VarId> lookupVar(Symbol name) const;
  std::optional<ProcId> lookupProc(Symbol name) const;

  void declareProcSignature(ProcDecl& proc, bool nested);
  void analyzeProcBody(ProcDecl& proc);
  void visitStmt(Stmt& stmt);
  void visitBlockInCurrentScope(BlockStmt& block);
  void visitExpr(Expr& expr);
  Type inferType(const Expr& expr);

  void checkAssignable(VarId id, SourceLoc loc);
  void resolveWithItems(std::vector<WithItem>& items, const Stmt* owner);

  StringInterner& interner_;
  DiagnosticEngine& diags_;
  SemaModule* module_ = nullptr;
  std::vector<LexicalScope> scope_stack_;
  std::vector<ProcId> proc_stack_;
  int sync_block_depth_ = 0;
  Symbol sym_writeln_;
  Symbol sym_write_;
};

/// Runs sema over `program` (convenience wrapper).
std::unique_ptr<SemaModule> analyze(Program& program, StringInterner& interner,
                                    DiagnosticEngine& diags);

}  // namespace cuaf
