// Source locations and ranges.
#pragma once

#include <cstdint>
#include <string>

#include "src/support/id_types.h"

namespace cuaf {

/// A position in a source buffer. Line and column are 1-based; a
/// default-constructed location is "unknown".
struct SourceLoc {
  FileId file;
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return line != 0; }

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
  friend auto operator<=>(const SourceLoc&, const SourceLoc&) = default;
};

struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  [[nodiscard]] bool valid() const { return begin.valid(); }

  friend bool operator==(const SourceRange&, const SourceRange&) = default;
};

}  // namespace cuaf
