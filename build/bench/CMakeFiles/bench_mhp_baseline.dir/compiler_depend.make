# Empty compiler generated dependencies file for bench_mhp_baseline.
# This may be replaced when dependencies are built.
