file(REMOVE_RECURSE
  "CMakeFiles/cuaf_corpus.dir/curated.cpp.o"
  "CMakeFiles/cuaf_corpus.dir/curated.cpp.o.d"
  "CMakeFiles/cuaf_corpus.dir/generator.cpp.o"
  "CMakeFiles/cuaf_corpus.dir/generator.cpp.o.d"
  "CMakeFiles/cuaf_corpus.dir/runner.cpp.o"
  "CMakeFiles/cuaf_corpus.dir/runner.cpp.o.d"
  "libcuaf_corpus.a"
  "libcuaf_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuaf_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
