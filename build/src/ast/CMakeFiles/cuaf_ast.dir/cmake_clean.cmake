file(REMOVE_RECURSE
  "CMakeFiles/cuaf_ast.dir/ast.cpp.o"
  "CMakeFiles/cuaf_ast.dir/ast.cpp.o.d"
  "CMakeFiles/cuaf_ast.dir/printer.cpp.o"
  "CMakeFiles/cuaf_ast.dir/printer.cpp.o.d"
  "CMakeFiles/cuaf_ast.dir/type.cpp.o"
  "CMakeFiles/cuaf_ast.dir/type.cpp.o.d"
  "libcuaf_ast.a"
  "libcuaf_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuaf_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
