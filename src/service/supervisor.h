// Worker-pool supervision for the analysis service: forks process-isolated
// analysis workers (src/service/worker.h), ships requests over pipes, and
// contains every form of worker death — crash (signal), unexpected exit,
// and hang past the deadline grace window — as a structured outcome the
// daemon reports without ever dying itself.
//
// Lifecycle per worker slot:
//   * spawned eagerly at construction (fork + pipe pair, child enters
//     workerMain and leaves via _exit);
//   * checked out exclusively per request (mutex + condvar), probed for
//     liveness with waitpid(WNOHANG) at checkout;
//   * on death: reaped, the death is attributed to the input that was
//     in flight (signal name + last streamed phase), and the slot is
//     respawned — immediately while the slot's consecutive-crash streak is
//     short, otherwise after an exponential backoff so a crash storm cannot
//     turn the daemon into a fork bomb;
//   * a write failure *before* the worker read the request means the worker
//     died between requests (e.g. an external SIGKILL) — that death is not
//     the input's fault: the supervisor respawns and retries once.
//
// Hung workers: a worker that stops responding (failpoint action `hang`, a
// livelock, ...) is SIGKILLed once the request deadline plus `grace_ms`
// passes, and reported as crashed with detail "hung". Requests without a
// deadline wait indefinitely — cooperative cancellation needs a budget to
// enforce.
//
// The Quarantine tracks crash counts per analysis cache key: once an input
// has killed workers `threshold` times it is answered instantly with a
// structured `quarantined` error and never forked for again (until
// `quarantine_clear`).
#pragma once

#include <sys/types.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cuaf::service {

struct SupervisorOptions {
  unsigned workers = 1;
  /// Extra wait past the request deadline before a silent worker is
  /// presumed hung and SIGKILLed.
  std::uint64_t grace_ms = 2000;
  /// Exponential respawn backoff for a slot with a consecutive-crash
  /// streak: initial << (streak-1), capped at max.
  std::uint64_t backoff_initial_ms = 10;
  std::uint64_t backoff_max_ms = 1000;
};

/// What happened to one dispatched request.
struct WorkerOutcome {
  bool crashed = false;
  std::string crash_detail;    ///< "signal 11 (Segmentation fault)" | "exit
                               ///< status 3" | "hung past deadline grace"
  std::string phase;           ///< last phase streamed before death; empty
                               ///< when the worker died before analyzing
  std::string result_payload;  ///< 'R' frame payload when !crashed
};

class Supervisor {
 public:
  struct Counters {
    std::uint64_t forks = 0;      ///< worker processes created, ever
    std::uint64_t restarts = 0;   ///< forks that replaced a dead worker
    std::uint64_t crashes = 0;    ///< worker deaths attributed to an input
    std::uint64_t hung_kills = 0; ///< SIGKILLs of unresponsive workers
  };

  explicit Supervisor(const SupervisorOptions& options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Ships one single-item NDJSON analyze document to an idle worker and
  /// blocks for its outcome. Thread-safe; callers queue on slot
  /// availability. `has_deadline`/`deadline_ms` bound the wait (plus
  /// grace_ms) before the worker is presumed hung.
  [[nodiscard]] WorkerOutcome analyze(const std::string& request_json,
                                      bool has_deadline,
                                      std::uint64_t deadline_ms);

  [[nodiscard]] Counters counters() const;
  [[nodiscard]] unsigned workers() const { return options_.workers; }

  /// Pids of currently live workers — lets crash tests SIGKILL real
  /// workers from outside the supervisor.
  [[nodiscard]] std::vector<pid_t> alivePids() const;

 private:
  struct Worker {
    pid_t pid = -1;
    int to_child = -1;    ///< parent writes requests
    int from_child = -1;  ///< parent reads phase/result frames
    bool busy = false;
    std::uint64_t crash_streak = 0;
    std::chrono::steady_clock::time_point ready_at{};  ///< backoff gate
  };

  /// Forks a worker into `slot`; mutex held. False when fork() fails.
  bool spawnLocked(std::size_t slot, bool is_restart);
  /// Closes fds and reaps the child; mutex held.
  void destroyLocked(Worker& w);
  /// Checkout: waits for an idle slot, ensures it has a live worker
  /// (respecting the backoff gate), marks it busy.
  std::size_t checkoutSlot();
  /// After-death bookkeeping for a busy slot: SIGKILL (a no-op on a
  /// zombie, guarantees the reap terminates), reap, count, backoff or
  /// immediate respawn. `input_fault` decides whether the crash counters
  /// and streak move. Returns the wait-status description for the crash
  /// message ("signal 6 (Aborted)", "exit status 3").
  std::string handleDeath(std::size_t slot, bool input_fault);

  SupervisorOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  std::vector<Worker> workers_;
  Counters counters_;
};

/// Crash-count ledger keyed by analysis cache key. An input reaches
/// quarantine once recordCrash() has been called `threshold` times for its
/// key; quarantined inputs are answered without forking a worker.
class Quarantine {
 public:
  explicit Quarantine(std::uint64_t threshold) : threshold_(threshold) {}

  /// Returns the new crash count for `key`.
  std::uint64_t recordCrash(std::uint64_t key);
  [[nodiscard]] bool contains(std::uint64_t key) const;
  [[nodiscard]] std::uint64_t entries() const;  ///< quarantined keys
  /// (key, crash count) for every quarantined key, sorted by key — the
  /// deterministic payload of the `quarantine_list` op.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>> list()
      const;
  void clear();

 private:
  std::uint64_t threshold_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::uint64_t> crashes_;
};

}  // namespace cuaf::service
