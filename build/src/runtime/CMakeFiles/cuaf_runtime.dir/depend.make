# Empty dependencies file for cuaf_runtime.
# This may be replaced when dependencies are built.
