#include "src/service/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/analysis/json_report.h"
#include "src/net/conn.h"
#include "src/net/event_loop.h"
#include "src/net/listener.h"
#include "src/support/failpoint.h"

namespace cuaf::service {

namespace {

std::uint64_t elapsedUs(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      cache_(options.cache_budget_bytes),
      quarantine_(options.quarantine_after) {
  if (!options_.cache_dir.empty()) {
    // Recover the durable cache into memory before anything is served: a
    // restarted daemon answers warm from disk with zero Pipeline runs.
    disk_ = std::make_unique<DiskCache>(options_.cache_dir);
    disk_->load([&](std::uint64_t key, std::string_view payload) {
      if (!AnalysisSnapshot::deserialize(payload)) return false;
      cache_.insert(key, std::string(payload));
      return true;
    });
  }
  if (options_.workers > 0) {
    // Forked before the thread pool exists, while the process is still
    // single-threaded (the cheapest point to fork from).
    SupervisorOptions sup;
    sup.workers = static_cast<unsigned>(options_.workers);
    sup.grace_ms = options_.worker_grace_ms;
    supervisor_ = std::make_unique<Supervisor>(sup);
  }
  pool_ = std::make_unique<ThreadPool>(
      ThreadPool::workersForJobs(options_.jobs));
}

Server::~Server() = default;

void Server::storeSnapshot(std::uint64_t key, std::string payload) {
  if (disk_ != nullptr) (void)disk_->append(key, payload);
  cache_.insert(key, std::move(payload));
}

namespace {

/// Builds the single-item NDJSON analyze document shipped to a worker —
/// the exact public-protocol grammar, so the worker reuses parseRequest.
/// All option booleans are emitted explicitly; defaults round-trip.
std::string renderWorkerRequest(const SourceItem& item, const Request& request,
                                bool has_deadline,
                                std::uint64_t remaining_ms) {
  const AnalysisOptions& o = request.options;
  auto flag = [](bool b) { return b ? "true" : "false"; };
  std::string out = "{\"op\":\"analyze\",\"id\":0";
  out += ",\"name\":\"" + jsonEscape(item.name) + "\"";
  out += ",\"source\":\"" + jsonEscape(item.source) + "\"";
  out += ",\"options\":{";
  out += std::string("\"prune\":") + flag(o.build.prune);
  out += std::string(",\"merge\":") + flag(o.pps.merge_equivalent);
  out += std::string(",\"por\":") + flag(o.pps.por);
  out += std::string(",\"deadlocks\":") + flag(o.pps.report_deadlocks);
  out += std::string(",\"model_atomics\":") + flag(o.build.model_atomics);
  out += std::string(",\"model_sync_loops\":") + flag(o.build.model_sync_loops);
  out += ",\"loop_bound\":" + std::to_string(o.build.loop_bound);
  out += std::string(",\"unroll_loops\":") + flag(o.build.unroll_loops);
  out += std::string(",\"witness\":") + flag(o.witness.enabled);
  out += std::string(",\"witness_replay\":") + flag(o.witness.replay);
  out += "}";
  if (has_deadline) {
    out += ",\"deadline_ms\":" + std::to_string(remaining_ms);
  }
  if (!request.failpoints.empty()) {
    out += ",\"failpoints\":\"" + jsonEscape(request.failpoints) + "\"";
  }
  out += "}";
  return out;
}

/// Splits a worker "error\n<code>\n<analyzed>\n<message>" result payload.
bool parseWorkerError(std::string_view payload, std::string& code,
                      bool& analyzed, std::string& message) {
  std::size_t first = payload.find('\n');
  if (first == std::string_view::npos) return false;
  std::size_t second = payload.find('\n', first + 1);
  if (second == std::string_view::npos) return false;
  code = std::string(payload.substr(0, first));
  std::string_view ran = payload.substr(first + 1, second - first - 1);
  if (ran != "0" && ran != "1") return false;
  analyzed = ran == "1";
  message = std::string(payload.substr(second + 1));
  return true;
}

}  // namespace

ItemResult Server::dispatchToWorker(const SourceItem& item, ItemResult result,
                                    const Request& request,
                                    std::chrono::steady_clock::time_point
                                        start) {
  // Remaining budget at dispatch time: batch items share one absolute
  // expiry, exactly like the in-process path's shared Deadline.
  std::uint64_t remaining_ms = 0;
  if (request.has_deadline) {
    std::uint64_t elapsed_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    remaining_ms =
        elapsed_ms < request.deadline_ms ? request.deadline_ms - elapsed_ms : 0;
  }
  WorkerOutcome outcome = supervisor_->analyze(
      renderWorkerRequest(item, request, request.has_deadline, remaining_ms),
      request.has_deadline, remaining_ms);
  if (outcome.crashed) {
    std::uint64_t crash_count = quarantine_.recordCrash(result.key);
    worker_crashes_.fetch_add(1, std::memory_order_relaxed);
    result.error_code = "worker_crashed";
    result.error_message =
        "worker crashed during " +
        (outcome.phase.empty() ? std::string("startup") : outcome.phase) +
        ": " + outcome.crash_detail + "; crash " +
        std::to_string(crash_count) + " for this input";
    return result;
  }
  std::string_view payload = outcome.result_payload;
  constexpr std::string_view kSnapshotTag = "snapshot\n";
  constexpr std::string_view kErrorTag = "error\n";
  if (payload.substr(0, kSnapshotTag.size()) == kSnapshotTag) {
    std::optional<AnalysisSnapshot> snap =
        AnalysisSnapshot::deserialize(payload.substr(kSnapshotTag.size()));
    if (snap) {
      analyzed_.fetch_add(1, std::memory_order_relaxed);
      result.snapshot = std::move(*snap);
      storeSnapshot(result.key, result.snapshot.serialize());
      return result;
    }
  } else if (payload.substr(0, kErrorTag.size()) == kErrorTag) {
    std::string code;
    std::string message;
    bool ran = false;
    if (parseWorkerError(payload.substr(kErrorTag.size()), code, ran,
                         message)) {
      // Mirror the in-process counter semantics: `analyzed` counts pipeline
      // runs including deadline-stopped ones; exceptions do not count.
      if (ran) analyzed_.fetch_add(1, std::memory_order_relaxed);
      if (code == "timeout" || code == "cancelled") {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
      }
      result.error_code = std::move(code);
      result.error_message = std::move(message);
      return result;
    }
  }
  result.error_code = "internal_error";
  result.error_message = "worker returned an unparseable result payload";
  return result;
}

ItemResult Server::analyzeItem(const SourceItem& item,
                               const AnalysisOptions& options,
                               const Request& request,
                               std::chrono::steady_clock::time_point start) {
  ItemResult result;
  result.name = item.name;
  // The deadline is excluded from the fingerprint, so a warm hit is served
  // even under an already-expired deadline: cached answers are free.
  std::uint64_t key = analysisCacheKey(item.name, item.source, options);
  result.key = key;
  if (std::optional<std::string> payload = cache_.lookup(key)) {
    if (std::optional<AnalysisSnapshot> snap =
            AnalysisSnapshot::deserialize(*payload)) {
      // Warm hits are served even for quarantined inputs: the cache proves
      // the input once analyzed cleanly, and answering costs no fork.
      result.cached = true;
      result.snapshot = std::move(*snap);
      return result;
    }
    // Corrupt payload: fall through and overwrite it with a fresh analysis.
  }
  if (supervisor_ != nullptr) {
    if (quarantine_.contains(key)) {
      quarantined_.fetch_add(1, std::memory_order_relaxed);
      result.error_code = "quarantined";
      result.error_message =
          "input repeatedly crashed analysis workers and is quarantined "
          "(key " +
          formatCacheKey(key) + "); use quarantine_clear to retry";
      return result;
    }
    return dispatchToWorker(item, std::move(result), request, start);
  }
  try {
    result.snapshot = analyzeToSnapshot(item.name, item.source, options);
  } catch (const std::exception& e) {
    // Injected allocation failures (and any other analysis fault) must not
    // escape into the thread pool; the item fails structurally instead.
    result.error_code = "internal_error";
    result.error_message = e.what();
    return result;
  }
  analyzed_.fetch_add(1, std::memory_order_relaxed);
  if (result.snapshot.stop_reason != StopReason::None) {
    // Partial result: report it as a structured error and never cache it —
    // a later request without a deadline must get the full analysis.
    result.error_code = stopReasonName(result.snapshot.stop_reason);
    result.error_message =
        result.snapshot.stop_reason == StopReason::Timeout
            ? "analysis timed out during " + result.snapshot.stop_phase
            : "analysis cancelled during " + result.snapshot.stop_phase;
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }
  storeSnapshot(key, result.snapshot.serialize());
  return result;
}

AnalysisOptions Server::effectiveOptions(const Request& request) {
  AnalysisOptions options = request.options;
  if (request.has_deadline) {
    options.deadline = Deadline::afterMillis(request.deadline_ms);
  }
  return options;
}

bool Server::admit(std::size_t items) {
  std::size_t prior = in_flight_items_.fetch_add(items);
  if (prior + items > options_.max_queued_items) {
    in_flight_items_.fetch_sub(items);
    overloaded_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void Server::release(std::size_t items) { in_flight_items_.fetch_sub(items); }

namespace {

std::string renderOverloaded(const Request& request, std::size_t bound) {
  ProtocolError error;
  error.code = "overloaded";
  error.message = "server at capacity (" + std::to_string(bound) +
                  " analysis items in flight); retry later";
  error.id = request.id;
  return renderErrorResponse(error);
}

}  // namespace

std::string Server::handleAnalyze(const Request& request) {
  auto start = std::chrono::steady_clock::now();
  if (!admit(1)) return renderOverloaded(request, options_.max_queued_items);
  ItemResult result = analyzeItem(request.items.front(),
                                  effectiveOptions(request), request, start);
  release(1);
  if (result.failed()) {
    // Single-item requests surface the failure as the top-level error (the
    // batch path keeps per-item error objects instead).
    ProtocolError error;
    error.code = result.error_code;
    error.message = result.error_message;
    error.id = request.id;
    return renderErrorResponse(error);
  }
  return renderAnalyzeResponse(request.id, result, elapsedUs(start));
}

std::string Server::handleBatch(const Request& request) {
  auto start = std::chrono::steady_clock::now();
  if (!admit(request.items.size())) {
    return renderOverloaded(request, options_.max_queued_items);
  }
  AnalysisOptions options = effectiveOptions(request);
  std::vector<ItemResult> results(request.items.size());
  pool_->parallelFor(request.items.size(), [&](std::size_t i) {
    results[i] = analyzeItem(request.items[i], options, request, start);
  });
  release(request.items.size());
  return renderBatchResponse(request.id, results, elapsedUs(start));
}

std::string Server::handleExplain(const Request& request) {
  auto fail = [&](std::string code, std::string message) {
    ProtocolError error;
    error.code = std::move(code);
    error.message = std::move(message);
    error.id = request.id;
    return renderErrorResponse(error);
  };
  std::optional<std::string> payload = cache_.lookup(request.key);
  if (!payload) {
    return fail("unknown_key", "no cached analysis under key \"" +
                                   formatCacheKey(request.key) + "\"");
  }
  std::optional<AnalysisSnapshot> snap = AnalysisSnapshot::deserialize(*payload);
  if (!snap) {
    return fail("unknown_key", "cached payload under key \"" +
                                   formatCacheKey(request.key) +
                                   "\" is corrupt");
  }
  if (snap->witness_json.empty()) {
    return fail("witness_unavailable",
                "analysis was cached without witnesses; re-analyze with "
                "options {\"witness\":true}");
  }
  if (request.warning_index >= snap->witness_json.size()) {
    return fail("invalid_request",
                "warning index " + std::to_string(request.warning_index) +
                    " out of range (analysis has " +
                    std::to_string(snap->witness_json.size()) + " warnings)");
  }
  return renderExplainResponse(request.id, request.key, request.warning_index,
                               snap->witness_json[request.warning_index]);
}

std::string Server::handleStats(const Request& request) {
  ResultCache::Stats cache_stats = cache_.stats();
  CacheCounters counters;
  counters.hits = cache_stats.hits;
  counters.misses = cache_stats.misses;
  counters.evictions = cache_stats.evictions;
  counters.insertions = cache_stats.insertions;
  counters.entries = cache_stats.entries;
  counters.bytes = cache_stats.bytes;
  counters.budget_bytes = cache_stats.budget_bytes;
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.analyzed = analyzed_.load(std::memory_order_relaxed);
  counters.timeouts = timeouts_.load(std::memory_order_relaxed);
  counters.overloaded = overloaded_.load(std::memory_order_relaxed);
  counters.jobs = options_.jobs;
  if (supervisor_ != nullptr) {
    counters.workers = supervisor_->workers();
    counters.workers_restarted = supervisor_->counters().restarts;
  }
  counters.worker_crashes = worker_crashes_.load(std::memory_order_relaxed);
  counters.quarantined = quarantined_.load(std::memory_order_relaxed);
  counters.quarantine_entries = quarantine_.entries();
  if (disk_ != nullptr) {
    DiskCache::Stats disk_stats = disk_->stats();
    counters.disk_records_loaded = disk_stats.records_loaded;
    counters.disk_records_skipped = disk_stats.records_skipped;
    counters.disk_appends = disk_stats.appends;
  }
  counters.connections_accepted =
      conns_accepted_.load(std::memory_order_relaxed);
  counters.connections_closed = conns_closed_.load(std::memory_order_relaxed);
  counters.connections_live =
      counters.connections_accepted - counters.connections_closed;
  counters.pipeline_depth_hwm =
      pipeline_depth_hwm_.load(std::memory_order_relaxed);
  counters.shard_id = options_.shard_id;
  counters.shard_count = options_.shard_count;
  counters.cluster_json = readClusterStatus();
  return renderStatsResponse(request.id, counters);
}

std::string Server::readClusterStatus() const {
  if (options_.cluster_status_path.empty()) return {};
  std::ifstream in(options_.cluster_status_path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string blob = ss.str();
  while (!blob.empty() && (blob.back() == '\n' || blob.back() == '\r')) {
    blob.pop_back();
  }
  // Embedded verbatim into the stats response — validate it really is one
  // JSON object so a torn write can never corrupt the response line.
  JsonValue doc;
  std::string error;
  if (!parseJson(blob, doc, error) || doc.kind != JsonValue::Kind::Object) {
    return {};
  }
  return blob;
}

std::string Server::handleLine(std::string_view line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::variant<Request, ProtocolError> parsed =
      parseRequest(line, options_.max_request_bytes);
  if (auto* error = std::get_if<ProtocolError>(&parsed)) {
    return renderErrorResponse(*error);
  }
  const Request& request = std::get<Request>(parsed);
  // Per-request fault injection: the spec is live for exactly this request
  // (the override restores the previous table — usually empty — on return).
  std::optional<failpoint::ScopedOverride> fault_scope;
  if (!request.failpoints.empty()) {
    fault_scope.emplace(request.failpoints);
    if (!fault_scope->ok()) {
      ProtocolError error;
      error.code = "invalid_request";
      error.message = fault_scope->error();
      error.id = request.id;
      return renderErrorResponse(error);
    }
  }
  try {
    switch (request.op) {
      case Op::Analyze:
        return handleAnalyze(request);
      case Op::AnalyzeBatch:
        return handleBatch(request);
      case Op::Explain:
        return handleExplain(request);
      case Op::Stats:
        return handleStats(request);
      case Op::CacheClear:
        cache_.clear();
        if (disk_ != nullptr) disk_->clear();
        return renderAckResponse(request.id, "cache_clear");
      case Op::QuarantineList:
        return renderQuarantineListResponse(request.id, quarantine_.list());
      case Op::QuarantineClear:
        quarantine_.clear();
        return renderAckResponse(request.id, "quarantine_clear");
      case Op::Shutdown:
        shutdown_ = true;
        return renderAckResponse(request.id, "shutdown");
      case Op::Ping:
        // Liveness probe for the shard supervisor's health checker and
        // circuit-breaker half-open probes: ack without touching the
        // pipeline or cache.
        return renderAckResponse(request.id, "ping");
    }
  } catch (const std::exception& e) {
    ProtocolError error;
    error.code = "internal_error";
    error.message = e.what();
    error.id = request.id;
    return renderErrorResponse(error);
  }
  ProtocolError error;
  error.code = "internal_error";
  error.message = "unhandled op";
  error.id = request.id;
  return renderErrorResponse(error);
}

std::size_t Server::serveStream(std::istream& in, std::ostream& out) {
  std::size_t answered = 0;
  std::string line;
  while (!shutdown_ && std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    out << handleLine(line) << '\n';
    out.flush();
    ++answered;
  }
  return answered;
}

std::size_t Server::serveSocket(const std::string& path) {
  net::EventLoop loop;

  // One parsed frame waiting for a dispatcher thread. The loop thread
  // extracts frames and assigns per-connection sequence numbers; the
  // dispatchers run handleLine (batch items may fan out further onto
  // pool_); completions come back through loop.post and are written in
  // sequence order by the Conn, so pipelined requests complete out of
  // order internally while every client reads answers in request order.
  struct Job {
    std::uint64_t conn_id;
    std::uint64_t seq;
    std::string line;
  };
  std::mutex job_mutex;
  std::condition_variable job_cv;
  std::deque<Job> jobs;
  bool job_stop = false;
  const std::size_t dispatcher_count = options_.jobs > 1 ? options_.jobs : 1;

  // Loop-thread-owned state (dispatchers touch it only via loop.post).
  std::unordered_map<std::uint64_t, std::unique_ptr<net::Conn>> conns;
  std::uint64_t next_conn_id = 1;
  std::size_t dispatch_in_flight = 0;
  std::size_t answered = 0;
  std::unique_ptr<net::Listener> listener;
  bool draining = false;

  // After a shutdown request: stop accepting, let every already-parsed
  // frame get its answer, flush, and exit once the last connection closes.
  auto maybeFinish = [&] {
    if (!shutdown_) return;
    if (!draining) {
      draining = true;
      if (listener) listener->close();
      for (auto& [id, conn] : conns) conn->beginDrain();
    }
    if (dispatch_in_flight == 0 && conns.empty()) loop.stop();
  };

  auto onAccept = [&](int fd) {
    std::uint64_t id = next_conn_id++;
    conns_accepted_.fetch_add(1, std::memory_order_relaxed);

    net::ConnOptions conn_options;
    conn_options.max_line_bytes = options_.max_request_bytes;

    net::Conn::Handler handler;
    handler.on_frame = [&, id](net::Conn& conn, std::uint64_t seq,
                               std::string&& line) {
      std::uint64_t depth = conn.inFlight();
      std::uint64_t prev = pipeline_depth_hwm_.load(std::memory_order_relaxed);
      while (depth > prev && !pipeline_depth_hwm_.compare_exchange_weak(
                                 prev, depth, std::memory_order_relaxed)) {
      }
      ++dispatch_in_flight;
      bool notify;
      {
        std::lock_guard<std::mutex> lock(job_mutex);
        jobs.push_back({id, seq, std::move(line)});
        // Deeper queues mean every dispatcher is already awake (they
        // re-check the predicate before sleeping): skipping the redundant
        // futex wake cuts a syscall per frame in pipelined bursts.
        notify = jobs.size() <= dispatcher_count;
      }
      if (notify) job_cv.notify_one();
    };
    handler.on_oversized = [&](net::Conn&) {
      ++answered;
      ProtocolError error;
      error.code = "oversized_request";
      error.message = "request line exceeds " +
                      std::to_string(options_.max_request_bytes) + " bytes";
      return renderErrorResponse(error);
    };
    handler.on_close = [&, id](net::Conn&) {
      conns_closed_.fetch_add(1, std::memory_order_relaxed);
      // The Conn is still executing a member function: destroy it only
      // after the current event finishes.
      loop.post([&, id] {
        conns.erase(id);
        maybeFinish();
      });
    };
    conns.emplace(id, std::make_unique<net::Conn>(loop, fd, conn_options,
                                                  std::move(handler)));
  };

  listener =
      std::make_unique<net::Listener>(loop, path, options_.backlog, onAccept);

  auto dispatcherLoop = [&] {
    struct Done {
      std::uint64_t conn_id;
      std::uint64_t seq;
      std::string response;
      bool drop_client;
    };
    std::vector<Job> batch;
    for (;;) {
      batch.clear();
      {
        std::unique_lock<std::mutex> lock(job_mutex);
        job_cv.wait(lock, [&] { return job_stop || !jobs.empty(); });
        if (job_stop || jobs.empty()) return;
        // Drain a fair share of the queue (at least 1, at most 32) per
        // wake: a pipelined burst costs one wake and one completion post
        // instead of one of each per request, while several dispatchers
        // still split a deep queue between them.
        std::size_t share =
            (jobs.size() + dispatcher_count - 1) / dispatcher_count;
        std::size_t take = std::min({share, jobs.size(), std::size_t{32}});
        for (std::size_t i = 0; i < take; ++i) {
          batch.push_back(std::move(jobs.front()));
          jobs.pop_front();
        }
      }
      std::vector<Done> done;
      done.reserve(batch.size());
      for (Job& job : batch) {
        std::string response = handleLine(job.line);
        // The "server.send" failpoint simulates a client that vanished
        // mid-response: the connection is dropped, the daemon keeps
        // serving.
        bool drop_client =
            failpoint::anyActive() &&
            failpoint::fire("server.send") == failpoint::Action::IoError;
        done.push_back({job.conn_id, job.seq, std::move(response),
                        drop_client});
      }
      loop.post([&, done = std::move(done)]() mutable {
        for (Done& d : done) {
          --dispatch_in_flight;
          ++answered;
          auto it = conns.find(d.conn_id);
          if (it != conns.end()) {
            if (d.drop_client) {
              it->second->abort();
            } else {
              it->second->completeRequest(d.seq, std::move(d.response));
            }
          }
        }
        maybeFinish();
      });
    }
  };
  std::vector<std::thread> dispatchers;
  dispatchers.reserve(dispatcher_count);
  for (std::size_t i = 0; i < dispatcher_count; ++i) {
    dispatchers.emplace_back(dispatcherLoop);
  }

  loop.run();

  {
    std::lock_guard<std::mutex> lock(job_mutex);
    job_stop = true;
  }
  job_cv.notify_all();
  for (std::thread& t : dispatchers) t.join();
  conns.clear();
  listener.reset();
  return answered;
}

}  // namespace cuaf::service
