file(REMOVE_RECURSE
  "CMakeFiles/cuaf_parser.dir/parser.cpp.o"
  "CMakeFiles/cuaf_parser.dir/parser.cpp.o.d"
  "libcuaf_parser.a"
  "libcuaf_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuaf_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
