// Cold-vs-warm throughput of the analysis service over a seeded corpus:
// the cold run analyzes every program through the Pipeline, the warm runs
// answer the identical batch purely from the content-addressed cache. The
// restart-recovery section repeats the exercise with a durable --cache-dir:
// a daemon restarted on the same directory must recover the cache from the
// checksummed segments and answer the whole batch byte-identically with
// zero pipeline runs, at least 3x faster than the cold analysis.
// Verifies the determinism contract (warm responses byte-identical to cold
// modulo the volatile cached/elapsed_us fields) and emits
// BENCH_service.json. Exit code 1 on any determinism or speedup failure.
//
// The socket-load section then sweeps sustained request/s over concurrent
// pipelined clients x shard counts against live serveSocket daemons on a
// warm cache, enforcing that concurrency beats the single-stream ping-pong
// loop by >=3x with byte-identical responses (docs/SERVICE.md).
//
//   Usage: bench_service [count] [seed] [jobs]
//     count  generated programs in the batch (default 240, >=200 per the
//            acceptance criteria)
//     seed   generator seed (default 20170529)
//     jobs   batch fan-out threads (default 1)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/analysis/json_report.h"
#include "src/analysis/snapshot.h"
#include "src/corpus/generator.h"
#include "src/net/hash_ring.h"
#include "src/service/disk_cache.h"
#include "src/service/server.h"

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Blocking client for the load sweep: buffered line reads, connect retry
/// while the daemon thread binds.
class BenchConn {
 public:
  explicit BenchConn(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    for (int attempt = 0; fd_ >= 0 && attempt < 400; ++attempt) {
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        connected_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ~BenchConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return connected_; }

  bool sendAll(std::string_view bytes) {
    while (!bytes.empty()) {
      ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      bytes.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  /// One '\n'-terminated line, newline stripped; empty on EOF/error.
  std::string readLine() {
    std::size_t nl;
    while ((nl = buf_.find('\n', scan_)) == std::string::npos) {
      scan_ = buf_.size();
      char chunk[65536];
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return {};
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
    std::string line = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    scan_ = 0;
    return line;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
  std::size_t scan_ = 0;
};

struct LoadRun {
  double seconds = 0.0;
  double rps = 0.0;
  bool identical = false;
};

// Sanitizer builds pay per-access instrumentation that makes handleLine
// CPU-bound (~25x slower), so the syscall amortization the load criterion
// measures can no longer dominate: keep the full race coverage of the
// sweep but relax the throughput floor there.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kLoadSpeedupFloor = 1.5;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kLoadSpeedupFloor = 1.5;
#else
constexpr double kLoadSpeedupFloor = 3.0;
#endif
#else
constexpr double kLoadSpeedupFloor = 3.0;
#endif

/// Drives `clients` over the shard daemons: the single-stream shape
/// ping-pongs one request at a time; every other shape pipelines each
/// client's whole chunk (grouped per shard) before reading a byte.
LoadRun runLoad(const std::vector<std::string>& lines,
                const std::vector<std::string>& ref,
                const std::vector<std::size_t>& route,
                const std::vector<std::string>& paths, std::size_t clients,
                bool pingpong) {
  const std::size_t total = lines.size();
  const std::size_t per = total / clients;
  std::vector<std::string> got(total);
  std::atomic<bool> io_ok{true};
  // Connections, groupings and request blobs are built before the clock
  // starts: the sweep measures sustained request throughput, not thread
  // spawn and connect(2) setup. A barrier releases every client at once.
  std::mutex mu;
  std::condition_variable cv;
  std::size_t ready = 0;
  bool go = false;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::size_t begin = c * per, end = begin + per;
      std::vector<std::vector<std::size_t>> groups(paths.size());
      std::vector<std::unique_ptr<BenchConn>> conns(paths.size());
      std::vector<std::string> blobs(paths.size());
      if (pingpong) {
        conns[0] = std::make_unique<BenchConn>(paths[0]);
        if (!conns[0]->connected()) io_ok.store(false);
      } else {
        for (std::size_t i = begin; i < end; ++i) groups[route[i]].push_back(i);
        for (std::size_t shard = 0; shard < paths.size(); ++shard) {
          if (groups[shard].empty()) continue;
          conns[shard] = std::make_unique<BenchConn>(paths[shard]);
          if (!conns[shard]->connected()) io_ok.store(false);
          for (std::size_t i : groups[shard]) blobs[shard] += lines[i] + "\n";
        }
      }
      {
        std::unique_lock<std::mutex> lock(mu);
        ++ready;
        cv.notify_all();
        cv.wait(lock, [&] { return go; });
      }
      if (!io_ok.load()) return;
      if (pingpong) {
        for (std::size_t i = begin; i < end; ++i) {
          if (!conns[0]->sendAll(lines[i] + "\n")) io_ok.store(false);
          got[i] = conns[0]->readLine();
        }
        return;
      }
      for (std::size_t shard = 0; shard < paths.size(); ++shard) {
        if (conns[shard] && !conns[shard]->sendAll(blobs[shard])) {
          io_ok.store(false);
        }
      }
      for (std::size_t shard = 0; shard < paths.size(); ++shard) {
        if (!conns[shard]) continue;
        for (std::size_t i : groups[shard]) got[i] = conns[shard]->readLine();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ready == clients; });
  }
  auto t0 = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu);
    go = true;
    cv.notify_all();
  }
  for (std::thread& t : threads) t.join();
  LoadRun run;
  run.seconds = msSince(t0) / 1000.0;
  run.rps = run.seconds > 0.0 ? static_cast<double>(total) / run.seconds : 0.0;
  run.identical = io_ok.load();
  for (std::size_t i = 0; run.identical && i < total; ++i) {
    run.identical = cuaf::service::stripVolatile(got[i]) == ref[i];
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t count = 240;
  std::uint64_t seed = 20170529;
  std::size_t jobs = 1;
  if (argc > 1) count = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) jobs = static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10));
  if (count == 0) count = 1;

  std::cout << "=== Service cold vs warm batch (" << count
            << " generated programs, seed " << seed << ", jobs " << jobs
            << ") ===\n";

  std::string request = [&] {
    cuaf::corpus::ProgramGenerator generator(seed);
    std::string r = "{\"op\":\"analyze_batch\",\"id\":1,\"items\":[";
    for (std::size_t i = 0; i < count; ++i) {
      cuaf::corpus::GeneratedProgram p = generator.next();
      if (i) r += ',';
      r += "{\"name\":\"" + cuaf::jsonEscape(p.name) + "\",\"source\":\"" +
           cuaf::jsonEscape(p.source) + "\"}";
    }
    r += "]}";
    return r;
  }();

  cuaf::service::ServerOptions options;
  options.jobs = jobs;
  options.cache_budget_bytes = 256u << 20;
  options.max_request_bytes = 64u << 20;
  cuaf::service::Server server(options);

  auto t0 = std::chrono::steady_clock::now();
  std::string cold = server.handleLine(request);
  double cold_ms = msSince(t0);

  // Several warm rounds; report the best (steady-state cache hit path).
  double warm_ms = 0.0;
  std::string warm;
  const int kWarmRounds = 5;
  for (int round = 0; round < kWarmRounds; ++round) {
    auto t1 = std::chrono::steady_clock::now();
    std::string response = server.handleLine(request);
    double ms = msSince(t1);
    if (round == 0 || ms < warm_ms) warm_ms = ms;
    warm = std::move(response);
  }

  bool identical = cuaf::service::stripVolatile(cold) ==
                   cuaf::service::stripVolatile(warm);
  bool fully_cached =
      warm.find("\"cached\":false") == std::string::npos &&
      warm.find("\"cached\":true") != std::string::npos;
  double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  cuaf::service::ResultCache::Stats cache = server.cache().stats();

  std::printf("%-28s %12.2f ms\n", "cold batch (all misses)", cold_ms);
  std::printf("%-28s %12.2f ms  (best of %d)\n", "warm batch (all hits)",
              warm_ms, kWarmRounds);
  std::printf("%-28s %11.1fx\n", "cold/warm speedup", speedup);
  std::printf("%-28s %12s\n", "responses byte-identical",
              identical ? "yes" : "NO");
  std::printf("%-28s %12s\n", "warm fully cached", fully_cached ? "yes" : "NO");
  std::printf("%-28s %12zu\n", "cache entries", cache.entries);
  std::printf("%-28s %12zu\n", "cache bytes", cache.bytes);

  // --- Deadline cutoff latency -------------------------------------------
  // A point-to-point handshake fan-out whose PPS state space explodes; a
  // 1 ms budget must cut it off as a structured timeout almost immediately
  // (the deadline is polled every worklist iteration), and the daemon must
  // keep serving afterwards.
  std::string blowup = [] {
    constexpr int kTasks = 10;
    std::string src = "proc blowup() {\n  var x: int = 0;\n";
    for (int i = 0; i < kTasks; ++i) {
      src += "  var d" + std::to_string(i) + "$: sync bool;\n";
    }
    for (int i = 0; i < kTasks; ++i) {
      src += "  begin with (ref x) { x += 1; d" + std::to_string(i) +
             "$ = true; }\n";
    }
    for (int i = 0; i < kTasks; ++i) {
      src += "  d" + std::to_string(i) + "$;\n";
    }
    src += "  writeln(x);\n}\n";
    return src;
  }();
  auto t2 = std::chrono::steady_clock::now();
  std::string cut = server.handleLine(
      "{\"op\":\"analyze\",\"id\":2,\"name\":\"blowup.chpl\",\"source\":\"" +
      cuaf::jsonEscape(blowup) + "\",\"deadline_ms\":1}");
  double timeout_ms = msSince(t2);
  bool timeout_structured =
      cut.find("\"code\":\"timeout\"") != std::string::npos &&
      cut.find("timed out during") != std::string::npos;
  bool timeout_fast = timeout_ms < 100.0;
  std::string after = server.handleLine(
      "{\"op\":\"analyze\",\"id\":3,\"source\":\"proc q() { writeln(1); }\"}");
  bool alive_after = after.find("\"status\":\"ok\"") != std::string::npos;

  std::printf("%-28s %12.2f ms  (1 ms budget)\n", "blowup timeout latency",
              timeout_ms);
  std::printf("%-28s %12s\n", "timeout structured",
              timeout_structured ? "yes" : "NO");
  std::printf("%-28s %12s\n", "daemon alive after timeout",
              alive_after ? "yes" : "NO");

  // --- Restart recovery: durable disk cache ------------------------------
  // One daemon analyzes the batch cold and persists every result; a second
  // daemon constructed on the same --cache-dir must recover the results
  // from the checksummed segments and answer the identical batch with zero
  // pipeline runs, byte-identical to the in-memory cold response.
  std::cout << "=== Restart recovery (durable --cache-dir) ===\n";
  const std::string cache_dir = "bench_service_cache";
  cuaf::service::DiskCache(cache_dir).clear();
  cuaf::service::ServerOptions disk_options = options;
  disk_options.cache_dir = cache_dir;

  double disk_cold_ms = 0.0;
  std::string disk_cold;
  {
    cuaf::service::Server first(disk_options);
    auto t3 = std::chrono::steady_clock::now();
    disk_cold = first.handleLine(request);
    disk_cold_ms = msSince(t3);
  }  // destroyed: the restarted daemon below sees only the segment files

  auto t4 = std::chrono::steady_clock::now();
  auto restarted = std::make_unique<cuaf::service::Server>(disk_options);
  double recovery_ms = msSince(t4);

  auto t5 = std::chrono::steady_clock::now();
  std::string disk_warm = restarted->handleLine(request);
  double disk_warm_ms = msSince(t5);

  bool disk_identical = cuaf::service::stripVolatile(cold) ==
                            cuaf::service::stripVolatile(disk_warm) &&
                        cuaf::service::stripVolatile(disk_cold) ==
                            cuaf::service::stripVolatile(disk_warm);
  bool disk_fully_cached =
      disk_warm.find("\"cached\":false") == std::string::npos &&
      disk_warm.find("\"cached\":true") != std::string::npos;
  std::string disk_stats = restarted->handleLine("{\"op\":\"stats\",\"id\":4}");
  bool zero_pipeline_runs =
      disk_stats.find("\"analyzed\":0") != std::string::npos;
  double disk_warm_speedup =
      disk_warm_ms > 0.0 ? disk_cold_ms / disk_warm_ms : 0.0;
  restarted.reset();
  cuaf::service::DiskCache(cache_dir).clear();
  ::rmdir(cache_dir.c_str());

  std::printf("%-28s %12.2f ms  (analyze + persist)\n",
              "cold batch to disk", disk_cold_ms);
  std::printf("%-28s %12.2f ms  (segment recovery)\n", "daemon restart",
              recovery_ms);
  std::printf("%-28s %12.2f ms  (warm from disk)\n", "restarted warm batch",
              disk_warm_ms);
  std::printf("%-28s %11.1fx\n", "disk warm speedup", disk_warm_speedup);
  std::printf("%-28s %12s\n", "restart byte-identical",
              disk_identical ? "yes" : "NO");
  std::printf("%-28s %12s\n", "restart zero pipeline runs",
              zero_pipeline_runs ? "yes" : "NO");

  // --- Socket load: pipelined clients x shards ---------------------------
  // Sustained req/s against live serveSocket daemons on a warm cache, so
  // the sweep measures the event-loop front end (framing, sequencing,
  // syscall amortization), not the analysis pipeline. Single stream means
  // one blocking ping-pong client — one round trip per request; every
  // concurrent shape pipelines each client's whole chunk before reading a
  // byte, which is where the >=3x comes from on a single core.
  std::cout << "=== Socket load (warm cache, pipelined clients x shards) ===\n";
  const std::size_t kPrograms = 48;
  const std::size_t kTotal = 960;  // divisible by every client count below
  std::vector<std::string> load_lines(kTotal);
  std::vector<std::uint64_t> load_keys(kPrograms);
  {
    cuaf::corpus::ProgramGenerator generator(seed + 1);
    std::vector<cuaf::corpus::GeneratedProgram> programs;
    programs.reserve(kPrograms);
    for (std::size_t p = 0; p < kPrograms; ++p) programs.push_back(generator.next());
    for (std::size_t p = 0; p < kPrograms; ++p) {
      load_keys[p] = cuaf::analysisCacheKey(programs[p].name, programs[p].source,
                                            cuaf::AnalysisOptions{});
    }
    for (std::size_t i = 0; i < kTotal; ++i) {
      const cuaf::corpus::GeneratedProgram& p = programs[i % kPrograms];
      load_lines[i] = "{\"op\":\"analyze\",\"id\":" + std::to_string(i + 1) +
                      ",\"name\":\"" + cuaf::jsonEscape(p.name) +
                      "\",\"source\":\"" + cuaf::jsonEscape(p.source) + "\"}";
    }
  }
  // Serial reference: the contract is "any concurrency, any shard count ==
  // the one-line-at-a-time loop" modulo the volatile cached/elapsed fields.
  std::vector<std::string> load_ref(kTotal);
  {
    cuaf::service::ServerOptions ref_options;
    ref_options.jobs = 1;
    cuaf::service::Server ref_server(ref_options);
    for (std::size_t i = 0; i < kTotal; ++i) {
      load_ref[i] =
          cuaf::service::stripVolatile(ref_server.handleLine(load_lines[i]));
    }
  }

  const std::string socket_base =
      "/tmp/cuaf-bench-" + std::to_string(::getpid()) + ".sock";
  const std::size_t kShardCounts[] = {1, 2};
  const std::size_t kClientCounts[] = {1, 8, 64};
  double load_rps[2][3] = {};
  bool load_identical = true;
  double single_rps = 0.0;
  double best_concurrent_rps = 0.0;
  for (std::size_t si = 0; si < 2; ++si) {
    const std::size_t shard_count = kShardCounts[si];
    std::vector<std::unique_ptr<cuaf::service::Server>> shards;
    std::vector<std::string> paths;
    for (std::size_t k = 0; k < shard_count; ++k) {
      cuaf::service::ServerOptions shard_options;
      shard_options.jobs = 1;
      shard_options.shard_id = k;
      shard_options.shard_count = shard_count == 1 ? 0 : shard_count;
      shards.push_back(std::make_unique<cuaf::service::Server>(shard_options));
      paths.push_back(cuaf::net::shardSocketPath(socket_base, k, shard_count));
    }
    std::vector<std::thread> daemons;
    for (std::size_t k = 0; k < shard_count; ++k) {
      daemons.emplace_back(
          [&shards, &paths, k] { shards[k]->serveSocket(paths[k]); });
    }
    cuaf::net::HashRing ring(shard_count);
    std::vector<std::size_t> route(kTotal);
    for (std::size_t i = 0; i < kTotal; ++i) {
      route[i] = ring.route(load_keys[i % kPrograms]);
    }
    // Warm every shard through its own socket before timing (which also
    // waits out daemon startup): repeats of a program route to the same
    // shard as its warming request, so the timed sweep is all cache hits.
    for (std::size_t p = 0; p < kPrograms; ++p) {
      BenchConn conn(paths[route[p]]);
      if (!conn.connected() || !conn.sendAll(load_lines[p] + "\n") ||
          conn.readLine().empty()) {
        load_identical = false;
      }
    }
    for (std::size_t ci = 0; ci < 3; ++ci) {
      const std::size_t clients = kClientCounts[ci];
      const bool pingpong = clients == 1 && shard_count == 1;
      // Best of two rounds: noise on a shared box only slows a run down,
      // so the faster round is the better throughput estimate.
      LoadRun run =
          runLoad(load_lines, load_ref, route, paths, clients, pingpong);
      LoadRun again =
          runLoad(load_lines, load_ref, route, paths, clients, pingpong);
      run.identical = run.identical && again.identical;
      if (again.rps > run.rps) run.rps = again.rps;
      load_rps[si][ci] = run.rps;
      load_identical = load_identical && run.identical;
      if (pingpong) single_rps = run.rps;
      if (clients > 1 && run.rps > best_concurrent_rps) {
        best_concurrent_rps = run.rps;
      }
      char label[64];
      std::snprintf(label, sizeof(label), "%zu shard%s x %2zu client%s%s",
                    shard_count, shard_count == 1 ? " " : "s", clients,
                    clients == 1 ? " " : "s", pingpong ? " (serial)" : "");
      std::printf("%-28s %9.0f req/s  (%s)\n", label, run.rps,
                  run.identical ? "byte-identical" : "MISMATCH");
    }
    // One shutdown request per shard drains serveSocket and ends the loop.
    for (const std::string& path : paths) {
      BenchConn bye(path);
      bye.sendAll("{\"op\":\"shutdown\",\"id\":0}\n");
      bye.readLine();
    }
    for (std::thread& t : daemons) t.join();
    for (const std::string& path : paths) ::unlink(path.c_str());
  }
  double load_speedup =
      single_rps > 0.0 ? best_concurrent_rps / single_rps : 0.0;
  std::printf("%-28s %11.1fx\n", "concurrent/serial speedup", load_speedup);
  std::printf("%-28s %12s\n", "load byte-identical",
              load_identical ? "yes" : "NO");

  bool ok = identical && fully_cached && speedup >= 5.0 &&
            timeout_structured && timeout_fast && alive_after &&
            disk_identical && disk_fully_cached && zero_pipeline_runs &&
            disk_warm_speedup >= 3.0 && load_identical &&
            load_speedup >= kLoadSpeedupFloor;

  std::ofstream json("BENCH_service.json");
  char buf[2048];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"bench\": \"service_cold_warm\",\n"
                "  \"count\": %zu,\n  \"seed\": %llu,\n  \"jobs\": %zu,\n"
                "  \"cold_ms\": %.2f,\n  \"warm_ms\": %.2f,\n"
                "  \"speedup\": %.1f,\n  \"byte_identical\": %s,\n"
                "  \"warm_fully_cached\": %s,\n"
                "  \"cache_entries\": %zu,\n  \"cache_bytes\": %zu,\n"
                "  \"timeout_ms\": %.2f,\n  \"timeout_structured\": %s,\n"
                "  \"alive_after_timeout\": %s,\n"
                "  \"disk_cold_ms\": %.2f,\n  \"recovery_ms\": %.2f,\n"
                "  \"disk_warm_ms\": %.2f,\n  \"disk_warm_speedup\": %.1f,\n"
                "  \"disk_byte_identical\": %s,\n"
                "  \"disk_zero_pipeline_runs\": %s,\n",
                count, static_cast<unsigned long long>(seed), jobs, cold_ms,
                warm_ms, speedup, identical ? "true" : "false",
                fully_cached ? "true" : "false", cache.entries, cache.bytes,
                timeout_ms, timeout_structured ? "true" : "false",
                alive_after ? "true" : "false", disk_cold_ms, recovery_ms,
                disk_warm_ms, disk_warm_speedup,
                disk_identical ? "true" : "false",
                zero_pipeline_runs ? "true" : "false");
  json << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"load_total_requests\": %zu,\n"
                "  \"load_distinct_programs\": %zu,\n"
                "  \"load_rps\": {\n"
                "    \"shards1\": {\"c1\": %.0f, \"c8\": %.0f, \"c64\": %.0f},\n"
                "    \"shards2\": {\"c1\": %.0f, \"c8\": %.0f, \"c64\": %.0f}\n"
                "  },\n"
                "  \"load_single_stream_rps\": %.0f,\n"
                "  \"load_best_concurrent_rps\": %.0f,\n"
                "  \"load_concurrent_speedup\": %.1f,\n"
                "  \"load_byte_identical\": %s\n}\n",
                kTotal, kPrograms, load_rps[0][0], load_rps[0][1],
                load_rps[0][2], load_rps[1][0], load_rps[1][1], load_rps[1][2],
                single_rps, best_concurrent_rps, load_speedup,
                load_identical ? "true" : "false");
  json << buf;
  std::cout << "wrote BENCH_service.json\n";
  if (!ok) {
    std::cout << "FAIL: expected byte-identical warm responses, >=5x "
                 "cold/warm speedup, a <100 ms structured timeout, a "
                 ">=3x byte-identical zero-pipeline disk-warm restart, and "
                 "a >=3x byte-identical concurrent socket-load speedup\n";
  }
  return ok ? 0 : 1;
}
