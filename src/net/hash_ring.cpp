#include "src/net/hash_ring.h"

#include <algorithm>
#include <cassert>

#include "src/support/hash.h"

namespace cuaf::net {

std::string shardSocketPath(const std::string& base, std::size_t shard,
                            std::size_t shard_count) {
  if (shard_count <= 1) return base;
  return base + "." + std::to_string(shard);
}

namespace {
// Stable seed for point placement; bump only with a coordinated client
// rollout, since every client must agree on the ring layout.
constexpr std::uint64_t kRingSeed = fnv1a64("cuaf-shard-ring-v1");
}  // namespace

HashRing::HashRing(std::size_t shards, std::size_t replicas)
    : alive_(shards == 0 ? 1 : shards, true) {
  std::size_t n = alive_.size();
  points_.reserve(n * replicas);
  for (std::size_t shard = 0; shard < n; ++shard) {
    std::uint64_t shard_seed = hashCombine(kRingSeed, shard);
    for (std::size_t replica = 0; replica < replicas; ++replica) {
      points_.push_back(
          {hashCombine(shard_seed, replica), static_cast<std::uint32_t>(shard)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash < b.hash || (a.hash == b.hash && a.shard < b.shard);
            });
}

std::size_t HashRing::route(std::uint64_t key) const {
  assert(aliveCount() > 0);
  // Diffuse the key (cache keys are already digests, but routing must not
  // depend on that) and walk clockwise from its ring position to the first
  // point owned by an alive shard.
  std::uint64_t h = splitmix64(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t value) { return p.hash < value; });
  for (std::size_t step = 0; step < points_.size(); ++step) {
    if (it == points_.end()) it = points_.begin();
    if (alive_[it->shard]) return it->shard;
    ++it;
  }
  return points_.front().shard;  // unreachable with aliveCount() > 0
}

std::size_t HashRing::routeExcluding(std::uint64_t key,
                                     std::size_t exclude) const {
  std::uint64_t h = splitmix64(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t value) { return p.hash < value; });
  for (std::size_t step = 0; step < points_.size(); ++step) {
    if (it == points_.end()) it = points_.begin();
    if (alive_[it->shard] && it->shard != exclude) return it->shard;
    ++it;
  }
  return shardCount();
}

void HashRing::markDead(std::size_t shard) {
  if (shard < alive_.size()) alive_[shard] = false;
}

void HashRing::markAlive(std::size_t shard) {
  if (shard < alive_.size()) alive_[shard] = true;
}

std::size_t HashRing::aliveCount() const {
  std::size_t n = 0;
  for (bool a : alive_) n += a;
  return n;
}

}  // namespace cuaf::net
