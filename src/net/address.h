// Shard addressing for the analysis service: one `Address` type covering
// both AF_UNIX socket paths and AF_INET host:port endpoints, so the ring,
// the tools, and the supervisor can span hosts without caring about the
// transport (docs/SERVICE.md "Cluster supervision & multi-host").
//
// Syntax: a string containing a ':' whose suffix is a decimal port and
// which contains no '/' parses as TCP ("127.0.0.1:7000"); anything else
// is a unix socket path. Shard k of a TCP base address listens on
// port+k, mirroring shardSocketPath's "<base>.<k>" convention.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cuaf::net {

struct Address {
  enum class Kind { Unix, Tcp };

  Kind kind = Kind::Unix;
  std::string path;        ///< Unix: socket path
  std::string host;        ///< Tcp: numeric or resolvable host
  std::uint16_t port = 0;  ///< Tcp: port (0 = kernel-assigned, Listener only)

  // Named makeUnix/makeTcp: `unix` is a predefined macro under GNU modes.
  [[nodiscard]] static Address makeUnix(std::string socket_path);
  [[nodiscard]] static Address makeTcp(std::string host, std::uint16_t port);

  /// Canonical printable form ("path" or "host:port").
  [[nodiscard]] std::string str() const;

  [[nodiscard]] bool operator==(const Address& other) const {
    return kind == other.kind && path == other.path && host == other.host &&
           port == other.port;
  }
};

/// Parses "host:port" (no '/', numeric port) as Tcp, anything else as a
/// Unix path. Throws std::runtime_error on malformed TCP-looking input
/// such as ":0x50" only when the suffix is not numeric — those fall back
/// to Unix, keeping every historical --socket value valid.
[[nodiscard]] Address parseAddress(const std::string& text);

/// The address shard `shard` of `shard_count` serves: Unix bases get the
/// "<base>.<shard>" suffix (shardSocketPath), TCP bases get port+shard.
/// Shared by serve (binding), the supervisor (health checks) and clients
/// (routing) so they can never disagree.
[[nodiscard]] Address shardAddress(const Address& base, std::size_t shard,
                                   std::size_t shard_count);

/// Splits a comma-separated `--connect` list into addresses. Throws on an
/// empty element.
[[nodiscard]] std::vector<Address> splitAddressList(const std::string& text);

/// Blocking connect to `address`; returns an owned blocking fd with
/// TCP_NODELAY set for Tcp. Throws std::runtime_error on failure.
[[nodiscard]] int dialAddress(const Address& address);

/// Creates a nonblocking+cloexec listening socket bound to `address`
/// (SO_REUSEADDR for Tcp; unlinks a stale Unix path). Returns the fd;
/// throws std::runtime_error on failure. `bound_port`, when non-null,
/// receives the actual TCP port (meaningful with port 0).
[[nodiscard]] int bindListenAddress(const Address& address, int backlog,
                                    std::uint16_t* bound_port);

}  // namespace cuaf::net
