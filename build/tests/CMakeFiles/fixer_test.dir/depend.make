# Empty dependencies file for fixer_test.
# This may be replaced when dependencies are built.
