file(REMOVE_RECURSE
  "libcuaf_support.a"
)
