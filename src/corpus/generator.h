// Synthetic mini-Chapel program generator.
//
// Substitutes for the Chapel 1.11 test suite the paper evaluates on
// (Table I): a seeded generator emitting programs with a calibrated mix of
// the idioms that drive the paper's numbers — most programs sequential, a
// small fraction using begin tasks, and the begin programs split between
// correctly synchronized patterns (sync variables, single variables, sync
// blocks, `in` intents, atomic handshakes, barrier rendezvous, unrollable
// sync-carrying loops) and the patterns that produce warnings: missing
// synchronization (true positives, including post-barrier tail accesses)
// and dynamically-safe waits buried in widened loops, which the bounded
// fixpoint over-approximates (the false-positive source that remains now
// that atomic handshakes are modeled; see docs/EXTENSIONS_SYNC.md).
#pragma once

#include <cstdint>
#include <string>

#include "src/support/rng.h"

namespace cuaf::corpus {

/// Synchronization discipline of one generated begin task.
enum class TaskDiscipline {
  NoSync,        ///< fire-and-forget with outer refs: true positive
  SyncVarSafe,   ///< writeEF after accesses, parent readFE at scope end: safe
  SyncVarLate,   ///< accesses continue after the signalling writeEF: unsafe
  SyncBlock,     ///< begin inside sync { }: pruned safe (rule B)
  AtomicSynced,  ///< atomic add/waitFor handshake: modeled (AtomicFill /
                 ///< AtomicWait transitions), safe
  SingleVar,     ///< single variable + readFF: modeled, safe
  NestedFn,      ///< hidden outer access via nested procedure: true positive
  InIntent,      ///< `in` copies only: safe (rule A prunes)
  LoopSyncSafe,  ///< begin in a const-bound loop <= the unroll cap, fenced
                 ///< per iteration: unrolled exactly, safe
  LoopSyncWidened,  ///< parent wait inside a non-const-bound loop: dynamically
                    ///< safe, but the widened loop guard admits a zero-wait
                    ///< path -> false positive
  BarrierSafe,   ///< child accesses before its barrier wait, parent joins the
                 ///< rendezvous: safe
  BarrierLate,   ///< child accesses after the barrier rendezvous released the
                 ///< parent: true positive
};

struct GeneratorOptions {
  /// Per-mille probability that a program contains begin tasks (the Chapel
  /// 1.11 suite has 218/5127 ≈ 4.3%).
  unsigned begin_pm = 43;
  /// Among begin programs, per-mille that at least one task is warned
  /// (38/218 ≈ 17.4%). Warned programs draw their bad tasks from
  /// {NoSync, SyncVarLate, NestedFn, BarrierLate, LoopSyncWidened}.
  unsigned warned_pm = 125;
  /// Among warning-producing tasks, per-mille that the warning is a *false
  /// positive* (a dynamically-safe wait widened away inside a loop; the
  /// atomic handshake that used to fill this pool is modeled now).
  /// Table I: 374/437 ≈ 85.6%.
  unsigned fp_pm = 790;
  /// Maximum begin tasks per program.
  unsigned max_tasks = 5;
  /// Accesses per task body (each outer access is a potential warning).
  unsigned min_accesses = 3;
  unsigned max_accesses = 9;
  /// Per-mille probability of nesting a begin inside a begin.
  unsigned nest_pm = 250;
  /// Per-mille probability of wrapping a task in a branch.
  unsigned branch_pm = 200;
  /// Per-mille probability of sequential filler loops/procs.
  unsigned filler_pm = 600;
};

struct GeneratedProgram {
  std::string name;
  std::string source;
  bool has_begin = false;
  /// Number of generated tasks whose accesses are dynamically unsafe
  /// (ground-truth intent; the oracle independently verifies).
  unsigned intended_unsafe_tasks = 0;
  /// Number of generated tasks that are dynamically safe but still flagged
  /// by the analysis (waits the widened-loop over-approximation discards).
  unsigned intended_fp_tasks = 0;
};

class ProgramGenerator {
 public:
  ProgramGenerator(std::uint64_t seed, GeneratorOptions options = {})
      : rng_(seed), options_(options) {}

  /// Generates the next program (deterministic for a given seed).
  GeneratedProgram next();

 private:
  void emitSequentialFiller(std::string& out, int indent);
  void emitTask(std::string& out, GeneratedProgram& meta, int indent,
                TaskDiscipline d, unsigned task_index, int depth);
  void emitAccesses(std::string& out, int indent, unsigned count);
  TaskDiscipline pickDiscipline(bool bad_task);
  /// Disciplines usable under a branch (their parent-side waits, if any,
  /// must not reference declarations inside the branch block).
  TaskDiscipline pickBranchDiscipline(bool bad_task);

  Rng rng_;
  GeneratorOptions options_;
  unsigned counter_ = 0;
  std::string pending_epilogue_;
  /// At most one barrier per program: every child spawned after the
  /// declaration registers on the phaser, so a second barrier whose task
  /// parks at it before arriving at the first would deadlock at runtime.
  bool barrier_emitted_ = false;
};

}  // namespace cuaf::corpus
