// Chaos harness for the self-healing shard cluster (docs/SERVICE.md
// "Cluster supervision & multi-host"): a live 3-shard supervised cluster
// under an 8-client request storm while a killer thread SIGKILLs random
// shards every ~50ms. Exit-enforced criteria:
//
//   * zero failed requests — every request eventually succeeds through
//     retries, circuit-breaker failover and respawns;
//   * responses byte-identical (modulo stripVolatile) to a serial
//     single-process reference run;
//   * exact reconciliation: every issued request is accounted for as a
//     success, and the supervisor reports >= as many respawns as kills
//     landed, with no shard given up on;
//   * respawned shards come back disk-warm: after recovery, a settle pass
//     plus a verify pass over the whole corpus adds zero pipeline runs
//     (sum of per-shard `analyzed` is unchanged) and answers cached;
//   * post-storm throughput >= 0.8x the pre-storm baseline (0.5x under
//     sanitizers, where respawn/recovery overhead is inflated).
//
// Emits BENCH_cluster.json. Exit code 1 when any criterion fails.
//
//   Usage: bench_cluster [programs] [seed]
//     programs  distinct corpus programs (default 24)
//     seed      corpus generator seed (default 20170529)
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/corpus/generator.h"
#include "src/net/address.h"
#include "src/net/shard_client.h"
#include "src/service/protocol.h"
#include "src/service/server.h"
#include "src/service/shard_supervisor.h"
#include "src/support/json.h"
#include "src/support/rng.h"

namespace {

constexpr std::size_t kShards = 3;
constexpr std::size_t kClients = 8;
constexpr std::uint64_t kKillEveryMs = 50;
constexpr std::uint64_t kStormMs = 2000;
constexpr std::uint64_t kPhaseMs = 800;  // baseline / recovered measurement

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kRecoveryFloor = 0.5;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kRecoveryFloor = 0.5;
#else
constexpr double kRecoveryFloor = 0.8;
#endif
#else
constexpr double kRecoveryFloor = 0.8;
#endif

using cuaf::net::ShardClient;
using cuaf::net::ShardClientOptions;

struct Criterion {
  std::string name;
  bool pass;
};

std::string analyzeRequest(std::size_t program, const std::string& name,
                           const std::string& source) {
  // id == program index so repeats are byte-identical requests.
  return "{\"op\":\"analyze\",\"id\":" + std::to_string(program) +
         ",\"name\":\"" + cuaf::jsonEscape(name) + "\",\"source\":\"" +
         cuaf::jsonEscape(source) + "\"}";
}

std::uint64_t jsonField(const std::string& json, const std::string& name) {
  std::size_t pos = json.find("\"" + name + "\":");
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + name.size() + 3, nullptr, 10);
}

std::vector<pid_t> shardPids(const std::string& status) {
  std::vector<pid_t> pids;
  std::size_t pos = 0;
  while ((pos = status.find("\"pid\":", pos)) != std::string::npos) {
    pos += 6;
    pids.push_back(
        static_cast<pid_t>(std::strtol(status.c_str() + pos, nullptr, 10)));
  }
  return pids;
}

std::string readFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

ShardClientOptions clientOptions(std::uint64_t seed) {
  ShardClientOptions options;
  options.retries = 8;
  options.backoff_base_ms = 2;
  options.backoff_cap_ms = 40;
  options.backoff_seed = seed;
  options.route_budget_ms = 60000;
  return options;
}

/// Sum of the `analyzed` counter over every shard (pipeline runs since
/// that shard generation started).
std::uint64_t totalAnalyzed(ShardClient& client) {
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < client.shardCount(); ++k) {
    total += jsonField(client.issueOn(k, "{\"op\":\"stats\",\"id\":90}"),
                       "analyzed");
  }
  return total;
}

/// Timed request storm: `kClients` threads issue routed analyze requests
/// for `duration_ms`; returns achieved requests/s. Failures and response
/// mismatches against `reference` are counted into the totals.
double storm(const std::string& sock,
             const std::vector<std::string>& requests,
             const std::vector<std::string>& reference,
             std::uint64_t duration_ms, std::uint64_t seed_base,
             std::atomic<std::uint64_t>& issued,
             std::atomic<std::uint64_t>& succeeded,
             std::atomic<std::uint64_t>& mismatched) {
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::milliseconds(duration_ms);
  std::vector<std::thread> threads;
  for (std::size_t tid = 0; tid < kClients; ++tid) {
    threads.emplace_back([&, tid] {
      ShardClient client(ShardClient::addressesFor(sock, kShards),
                         clientOptions(seed_base + tid));
      cuaf::Rng rng(0xc4a0 + seed_base * 131 + tid);
      while (std::chrono::steady_clock::now() < deadline) {
        std::size_t program = rng.below(requests.size());
        issued.fetch_add(1, std::memory_order_relaxed);
        try {
          std::string response =
              client.issueRouted(program, requests[program]);
          if (!ShardClient::responseOk(response) ||
              cuaf::service::stripVolatile(response) != reference[program]) {
            mismatched.fetch_add(1, std::memory_order_relaxed);
          } else {
            succeeded.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception&) {
          // counted: issued - succeeded - mismatched = hard failures
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
  return secs > 0 ? static_cast<double>(succeeded.load()) / secs : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t programs = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 24;
  std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                : 20170529ull;
  if (programs == 0) programs = 24;

  std::string tmpl = "/tmp/cuaf-bench-cluster-XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  if (!made) {
    std::cerr << "bench_cluster: mkdtemp failed\n";
    return 1;
  }
  const std::string dir = made;
  const std::string sock = dir + "/d.sock";
  const std::string status_path = dir + "/status.json";
  const std::string cache = dir + "/cache";
  ::mkdir(cache.c_str(), 0755);

  // Corpus + requests.
  std::vector<std::string> requests;
  {
    cuaf::corpus::ProgramGenerator generator(seed);
    for (std::size_t i = 0; i < programs; ++i) {
      cuaf::corpus::GeneratedProgram p = generator.next();
      requests.push_back(analyzeRequest(i, p.name, p.source));
    }
  }

  // Serial reference: one in-process server answers the whole corpus.
  // Scoped so its threads are joined before the fork below (TSan-safe
  // fork discipline: children that make threads fork from single-threaded
  // parents only).
  std::vector<std::string> reference;
  {
    cuaf::service::Server server;
    for (const std::string& request : requests) {
      reference.push_back(
          cuaf::service::stripVolatile(server.handleLine(request)));
    }
  }

  // The supervised cluster.
  cuaf::service::ShardSupervisorOptions sup;
  sup.shards = kShards;
  sup.listen_base = sock;
  sup.cluster_status_path = status_path;
  sup.health_interval_ms = 50;
  sup.health_timeout_ms = 2000;
  sup.backoff_initial_ms = 5;
  sup.backoff_max_ms = 50;
  sup.max_respawns = 1u << 20;  // the storm must never exhaust a slot
  sup.stable_ms = 100;
  pid_t sup_pid = ::fork();
  if (sup_pid == 0) {
    ::setpgid(0, 0);
    cuaf::service::ShardSupervisor supervisor(sup, [&](std::size_t k) -> int {
      cuaf::service::ServerOptions options;
      options.shard_id = k;
      options.shard_count = kShards;
      options.cluster_status_path = status_path;
      options.cache_dir = cache + "/shard-" + std::to_string(k);
      try {
        cuaf::service::Server server(options);
        server.serveSocket(cuaf::net::shardAddress(
                               cuaf::net::parseAddress(sock), k, kShards)
                               .str());
      } catch (...) {
        return 2;
      }
      return 0;
    });
    std::_Exit(supervisor.run());
  }
  if (sup_pid < 0) {
    std::cerr << "bench_cluster: fork failed\n";
    return 1;
  }

  auto clusterReady = [&](std::uint64_t budget_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(budget_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      bool up = true;
      for (std::size_t k = 0; k < kShards; ++k) {
        if (!cuaf::net::probeAddress(
                cuaf::net::shardAddress(cuaf::net::parseAddress(sock), k,
                                        kShards),
                200)) {
          up = false;
          break;
        }
      }
      if (up && jsonField(readFileOrEmpty(status_path), "running") == kShards)
        return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  };

  std::vector<Criterion> criteria;
  int exit_code = 0;
  auto require = [&](const std::string& name, bool pass) {
    criteria.push_back({name, pass});
    std::cout << (pass ? "  [pass] " : "  [FAIL] ") << name << "\n";
    if (!pass) exit_code = 1;
  };

  if (!clusterReady(60000)) {
    std::cerr << "bench_cluster: cluster never came up\n";
    ::kill(-sup_pid, SIGKILL);
    return 1;
  }

  // Warm every shard's cache through the ring, checking the reference.
  {
    ShardClient client(ShardClient::addressesFor(sock, kShards),
                       clientOptions(1));
    bool warm_identical = true;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      warm_identical &= cuaf::service::stripVolatile(client.issueRouted(
                            i, requests[i])) == reference[i];
    }
    require("cold cluster responses byte-identical to serial reference",
            warm_identical);
  }

  // Pre-storm baseline throughput on the warm cluster.
  std::atomic<std::uint64_t> base_issued{0}, base_ok{0}, base_bad{0};
  double baseline_rps = storm(sock, requests, reference, kPhaseMs, 100,
                              base_issued, base_ok, base_bad);
  std::cout << "baseline: " << baseline_rps << " req/s\n";

  // The kill storm: random shard SIGKILLed every ~50ms while 8 clients
  // keep requesting.
  std::atomic<std::uint64_t> kills{0};
  std::atomic<bool> stop_killer{false};
  std::thread killer([&] {
    cuaf::Rng rng(0xdead ^ seed);
    while (!stop_killer.load(std::memory_order_relaxed)) {
      std::vector<pid_t> pids = shardPids(readFileOrEmpty(status_path));
      if (!pids.empty()) {
        pid_t victim = pids[rng.below(pids.size())];
        if (victim > 0 && ::kill(victim, SIGKILL) == 0) {
          kills.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(kKillEveryMs));
    }
  });
  std::atomic<std::uint64_t> storm_issued{0}, storm_ok{0}, storm_bad{0};
  double storm_rps = storm(sock, requests, reference, kStormMs, 200,
                           storm_issued, storm_ok, storm_bad);
  stop_killer.store(true);
  killer.join();
  std::cout << "storm: " << storm_rps << " req/s under " << kills.load()
            << " SIGKILLs\n";

  require("kill storm landed at least one SIGKILL", kills.load() >= 1);
  require("zero failed requests during the kill storm",
          storm_ok.load() == storm_issued.load() && storm_bad.load() == 0);
  require("storm responses byte-identical to serial reference",
          storm_bad.load() == 0);

  // Recovery: every slot respawned, none given up.
  bool recovered = clusterReady(60000);
  require("cluster fully respawned after the storm", recovered);
  std::string status = readFileOrEmpty(status_path);
  require("supervisor reconciles >= one respawn per landed SIGKILL",
          jsonField(status, "total_respawns") >= kills.load());
  require("no shard given up on", jsonField(status, "gave_up") == 0);

  // Disk-warm: a settle pass re-homes every key; the verify pass must add
  // zero pipeline runs and answer cached + byte-identical.
  {
    ShardClient client(ShardClient::addressesFor(sock, kShards),
                       clientOptions(2));
    for (std::size_t i = 0; i < requests.size(); ++i) {
      (void)client.issueRouted(i, requests[i]);  // settle
    }
    std::uint64_t analyzed_before = totalAnalyzed(client);
    bool verify_identical = true;
    bool verify_cached = true;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      std::string response = client.issueRouted(i, requests[i]);
      verify_identical &=
          cuaf::service::stripVolatile(response) == reference[i];
      verify_cached &=
          response.find("\"cached\":true") != std::string::npos;
    }
    std::uint64_t analyzed_after = totalAnalyzed(client);
    require("respawned shards serve disk-warm (zero new pipeline runs)",
            analyzed_after == analyzed_before);
    require("post-recovery responses cached and byte-identical",
            verify_identical && verify_cached);
  }

  // Post-storm throughput must recover.
  std::atomic<std::uint64_t> rec_issued{0}, rec_ok{0}, rec_bad{0};
  double recovered_rps = storm(sock, requests, reference, kPhaseMs, 300,
                               rec_issued, rec_ok, rec_bad);
  double ratio = baseline_rps > 0 ? recovered_rps / baseline_rps : 0.0;
  std::cout << "recovered: " << recovered_rps << " req/s (" << ratio
            << "x baseline, floor " << kRecoveryFloor << "x)\n";
  require("post-storm throughput >= floor x baseline",
          ratio >= kRecoveryFloor);

  // Clean shutdown: broadcast, then the supervisor exits 0.
  {
    ShardClient client(ShardClient::addressesFor(sock, kShards),
                       clientOptions(3));
    for (std::size_t shard : client.reachableShards()) {
      try {
        (void)client.issueOn(shard, "{\"op\":\"shutdown\",\"id\":99}");
      } catch (const std::exception&) {
      }
    }
  }
  int sup_status = 0;
  int sup_exit = -1;
  if (::waitpid(sup_pid, &sup_status, 0) == sup_pid && WIFEXITED(sup_status)) {
    sup_exit = WEXITSTATUS(sup_status);
  }
  require("supervisor exits 0 after broadcast shutdown", sup_exit == 0);
  if (sup_exit != 0) ::kill(-sup_pid, SIGKILL);

  std::ofstream json("BENCH_cluster.json");
  json << "{\n  \"programs\": " << programs << ",\n  \"shards\": " << kShards
       << ",\n  \"clients\": " << kClients << ",\n  \"kills\": "
       << kills.load() << ",\n  \"total_respawns\": "
       << jsonField(status, "total_respawns") << ",\n  \"storm_requests\": "
       << storm_issued.load() << ",\n  \"storm_failures\": "
       << storm_issued.load() - storm_ok.load() << ",\n  \"baseline_rps\": "
       << baseline_rps << ",\n  \"storm_rps\": " << storm_rps
       << ",\n  \"recovered_rps\": " << recovered_rps
       << ",\n  \"recovery_ratio\": " << ratio << ",\n  \"criteria\": [";
  for (std::size_t i = 0; i < criteria.size(); ++i) {
    json << (i ? "," : "") << "\n    {\"name\": \""
         << cuaf::jsonEscape(criteria[i].name)
         << "\", \"pass\": " << (criteria[i].pass ? "true" : "false") << "}";
  }
  json << "\n  ]\n}\n";
  std::cout << "wrote BENCH_cluster.json\n";

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return exit_code;
}
