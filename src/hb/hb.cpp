#include "src/hb/hb.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "src/hb/detector.h"
#include "src/support/rng.h"

namespace cuaf::hb {

namespace {

/// splitmix64 finalizer, matching the explorer's per-stream derivation so HB
/// sampling seeds stay decorrelated across config combos.
std::uint64_t deriveSeed(std::uint64_t seed, std::size_t combo) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (combo + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Ordered site set with (loc, var) dedup: first sighting fixes the slot,
/// later ones OR in is_write — same discipline as the explorer's SiteIndex,
/// so results are deterministic in run order.
class SiteSet {
 public:
  void addAll(const std::vector<rt::UafEvent>& events) {
    for (const rt::UafEvent& e : events) {
      Key k{e.loc, e.var};
      auto [it, inserted] = index_.try_emplace(k, sites_.size());
      if (inserted) {
        sites_.push_back(e);
      } else {
        sites_[it->second].is_write = sites_[it->second].is_write || e.is_write;
      }
    }
  }
  [[nodiscard]] std::vector<rt::UafEvent> take() { return std::move(sites_); }

 private:
  struct Key {
    SourceLoc loc;
    VarId var;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.loc.file.index();
      h = h * 0x100000001b3ull ^ k.loc.line;
      h = h * 0x100000001b3ull ^ k.loc.column;
      h = h * 0x100000001b3ull ^ k.var.index();
      return static_cast<std::size_t>(h);
    }
  };
  std::vector<rt::UafEvent> sites_;
  std::unordered_map<Key, std::size_t, KeyHash> index_;
};

/// One sampled schedule: a full interpreter run with the detector attached.
/// `rng` picks among ready tasks when set; otherwise `victim` is delayed as
/// long as possible (matching the explorer's adversarial runs), and with
/// neither the first ready task wins (the default schedule).
void sampleOnce(const ir::Module& module, const Program& program, ProcId entry,
                const rt::ConfigAssignment& configs, Rng* rng,
                std::size_t victim, const Options& options, SiteSet& sites,
                Result& result) {
  rt::Interp interp(module, program, &configs);
  Detector detector;
  interp.setObserver(&detector);
  interp.start(entry);

  auto pick = [&](rt::Interp&, const std::vector<std::size_t>& ready,
                  std::size_t) -> std::size_t {
    if (ready.size() <= 1) return 0;
    if (rng != nullptr) return static_cast<std::size_t>(rng->below(ready.size()));
    if (victim != static_cast<std::size_t>(-1)) {
      for (std::size_t i = 0; i < ready.size(); ++i) {
        if (ready[i] != victim) return i;
      }
    }
    return 0;
  };
  rt::DriveOutcome drive =
      rt::driveSchedule(interp, options.max_steps_per_run, pick);

  ++result.schedules_run;
  if (drive.deadlocked) ++result.deadlock_schedules;
  if (interp.unsupportedFeature()) result.unsupported = true;
  sites.addAll(detector.flaggedSites());
}

void checkEntry(const ir::Module& module, const Program& program, ProcId entry,
                const Options& options, SiteSet& sites, Result& result) {
  const std::vector<rt::ConfigAssignment> combos =
      rt::enumerateConfigAssignments(module, options.max_config_combos);
  constexpr std::size_t kNoVictim = static_cast<std::size_t>(-1);
  for (std::size_t combo = 0; combo < combos.size(); ++combo) {
    if (StopReason stop = options.deadline.check("hb.sample");
        stop != StopReason::None) {
      result.stopped = stop;
      return;
    }
    // Default schedule, then the adversarial delay-victim sweep (task 0 is
    // the root and never a useful victim).
    sampleOnce(module, program, entry, combos[combo], nullptr, kNoVictim,
               options, sites, result);
    for (std::size_t victim = 1; victim <= options.victim_sweep; ++victim) {
      if (StopReason stop = options.deadline.check("hb.sample");
          stop != StopReason::None) {
        result.stopped = stop;
        return;
      }
      sampleOnce(module, program, entry, combos[combo], nullptr, victim,
                 options, sites, result);
    }
    Rng rng(deriveSeed(options.seed, combo));
    for (std::size_t run = 0; run < options.random_schedules; ++run) {
      if (StopReason stop = options.deadline.check("hb.sample");
          stop != StopReason::None) {
        result.stopped = stop;
        return;
      }
      sampleOnce(module, program, entry, combos[combo], &rng, kNoVictim,
                 options, sites, result);
    }
  }
}

}  // namespace

bool Result::sawUafAt(SourceLoc loc) const {
  return std::any_of(sites.begin(), sites.end(),
                     [&](const rt::UafEvent& e) { return e.loc == loc; });
}

Result check(const ir::Module& module, const Program& program, ProcId entry,
             const Options& options) {
  Result result;
  SiteSet sites;
  checkEntry(module, program, entry, options, sites, result);
  result.sites = sites.take();
  return result;
}

Result checkAll(const ir::Module& module, const Program& program,
                const Options& options) {
  Result result;
  SiteSet sites;
  for (const auto& proc : module.procs) {
    if (proc->is_nested) continue;
    if (!proc->decl->params.empty()) continue;  // needs caller context
    checkEntry(module, program, proc->id, options, sites, result);
    if (result.stopped != StopReason::None) break;
  }
  result.sites = sites.take();
  return result;
}

}  // namespace cuaf::hb
