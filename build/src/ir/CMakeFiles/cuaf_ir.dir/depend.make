# Empty dependencies file for cuaf_ir.
# This may be replaced when dependencies are built.
