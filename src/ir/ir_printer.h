// Debug/golden-test printer for the IR.
#pragma once

#include <string>

#include "src/ir/ir.h"

namespace cuaf::ir {

/// Renders the module as an indented op listing, e.g.
///   proc outerVarUse
///     block scope=1
///       decl.data x
///       decl.sync doneA$
///       begin scope=2
///         eval uses=[r x, w x]
///         sync.writeEF doneA$
[[nodiscard]] std::string printModule(const Module& module);
[[nodiscard]] std::string printStmt(const Stmt& stmt, const SemaModule& sema,
                                    int indent = 0);

}  // namespace cuaf::ir
