#include "src/net/listener.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace cuaf::net {

Listener::Listener(EventLoop& loop, const std::string& path, int backlog,
                   AcceptFn on_accept)
    : loop_(loop), path_(path), on_accept_(std::move(on_accept)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("cannot create socket: ") +
                             std::strerror(errno));
  }
  ::unlink(path.c_str());
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd_, backlog) < 0) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot bind/listen on " + path + ": " +
                             std::strerror(err));
  }
  loop_.add(fd_, EPOLLIN, [this](std::uint32_t) { onReadable(); });
}

Listener::~Listener() { close(); }

void Listener::close() {
  if (fd_ < 0) return;
  loop_.del(fd_);
  ::close(fd_);
  fd_ = -1;
  ::unlink(path_.c_str());
}

void Listener::onReadable() {
  // Accept everything pending: one readable event may cover a burst of
  // connections when the backlog filled while the loop was busy.
  while (fd_ >= 0) {
    int client = ::accept4(fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // ECONNABORTED (client gave up while queued), EMFILE/ENFILE (fd
      // pressure): skip this connection attempt; the daemon keeps serving.
      return;
    }
    ++accepted_;
    on_accept_(client);
  }
}

}  // namespace cuaf::net
