// Vector clocks for the happens-before UAF oracle (docs/HB_ORACLE.md).
//
// A VectorClock maps task indices to event counters; clock C happened
// before clock D when C <= D componentwise. Clocks grow on demand (task
// indices are dense, assigned by the interpreter in spawn order), so a
// fresh clock is the bottom element.
//
// ClockMap owns every clock the detector needs:
//  * one per task (born with its own component at 1 — the first epoch),
//  * one per sync/atomic cell (the release-acquire channel of
//    readFE/writeEF/atomic ops),
//  * one per `sync { }` region (finished tasks join in; the closing task
//    acquires the union at the fence).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cuaf::hb {

class VectorClock {
 public:
  /// Component for task t (0 when never touched).
  [[nodiscard]] std::uint32_t of(std::size_t t) const {
    return t < c_.size() ? c_[t] : 0;
  }

  /// Advances task t's component (a new epoch for t's next events).
  void bump(std::size_t t) {
    grow(t + 1);
    ++c_[t];
  }

  /// Sets component t to at least `v`.
  void raise(std::size_t t, std::uint32_t v) {
    grow(t + 1);
    if (c_[t] < v) c_[t] = v;
  }

  /// Componentwise maximum (this := this ⊔ o).
  void join(const VectorClock& o) {
    grow(o.c_.size());
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
      if (c_[i] < o.c_[i]) c_[i] = o.c_[i];
    }
  }

  /// Componentwise <=; `a.leq(b)` means every event a knows, b knows.
  [[nodiscard]] bool leq(const VectorClock& o) const {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > o.of(i)) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t size() const { return c_.size(); }

 private:
  void grow(std::size_t n) {
    if (c_.size() < n) c_.resize(n, 0);
  }

  std::vector<std::uint32_t> c_;
};

class ClockMap {
 public:
  /// Task t's clock; created on first touch with C[t][t] = 1 so an epoch of
  /// 0 always means "before every event of t". The reference is invalidated
  /// by a later task() call with a larger index (dense storage regrows) —
  /// materialize every needed clock before holding references.
  [[nodiscard]] VectorClock& task(std::size_t t) {
    if (tasks_.size() <= t) tasks_.resize(t + 1);
    VectorClock& c = tasks_[t];
    if (c.of(t) == 0) c.bump(t);
    return c;
  }

  /// Release-acquire clock of sync/atomic cell `uid` (bottom-initialized).
  [[nodiscard]] VectorClock& cell(std::uint32_t uid) { return cells_[uid]; }

  /// Join clock of `sync { }` region `id` (bottom-initialized).
  [[nodiscard]] VectorClock& region(std::uint32_t id) { return regions_[id]; }

  [[nodiscard]] std::size_t taskCount() const { return tasks_.size(); }

 private:
  std::vector<VectorClock> tasks_;
  std::unordered_map<std::uint32_t, VectorClock> cells_;
  std::unordered_map<std::uint32_t, VectorClock> regions_;
};

}  // namespace cuaf::hb
