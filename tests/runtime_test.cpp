#include <gtest/gtest.h>

#include "src/analysis/pipeline.h"
#include "src/corpus/curated.h"
#include "src/runtime/explore.h"
#include "tests/test_util.h"

namespace cuaf {
namespace {

using test::Fixture;

rt::ExploreResult exploreSource(const std::string& src,
                                rt::ExploreOptions opts = {}) {
  static std::vector<std::unique_ptr<Fixture>> keep_alive;
  keep_alive.push_back(std::make_unique<Fixture>(Fixture::lower(src)));
  Fixture& f = *keep_alive.back();
  EXPECT_FALSE(f.diags.hasErrors()) << f.diagText();
  return rt::exploreAll(*f.module, *f.program, opts);
}

// ---------------------------------------------------------------------------
// Value semantics
// ---------------------------------------------------------------------------

TEST(Value, Coercions) {
  EXPECT_EQ(rt::asInt(rt::Value{std::int64_t{3}}), 3);
  EXPECT_EQ(rt::asInt(rt::Value{2.9}), 2);
  EXPECT_EQ(rt::asInt(rt::Value{true}), 1);
  EXPECT_DOUBLE_EQ(rt::asReal(rt::Value{std::int64_t{5}}), 5.0);
  EXPECT_TRUE(rt::asBool(rt::Value{std::int64_t{1}}));
  EXPECT_FALSE(rt::asBool(rt::Value{std::string{}}));
  EXPECT_TRUE(rt::asBool(rt::Value{std::string{"x"}}));
  EXPECT_EQ(rt::asString(rt::Value{true}), "true");
  EXPECT_EQ(rt::asString(rt::Value{std::int64_t{7}}), "7");
}

TEST(Value, EnvLookupWalksChain) {
  auto outer = std::make_shared<rt::EnvNode>();
  auto inner = std::make_shared<rt::EnvNode>();
  inner->parent = outer;
  auto cell = std::make_shared<rt::Cell>();
  outer->bindings.emplace_back(VarId(1), cell);
  EXPECT_EQ(inner->lookup(VarId(1)), cell);
  EXPECT_EQ(inner->lookup(VarId(2)), nullptr);
}

TEST(Value, ShadowingUsesNearestBinding) {
  auto outer = std::make_shared<rt::EnvNode>();
  auto inner = std::make_shared<rt::EnvNode>();
  inner->parent = outer;
  auto a = std::make_shared<rt::Cell>();
  auto b = std::make_shared<rt::Cell>();
  outer->bindings.emplace_back(VarId(1), a);
  inner->bindings.emplace_back(VarId(1), b);
  EXPECT_EQ(inner->lookup(VarId(1)), b);
  EXPECT_EQ(outer->lookup(VarId(1)), a);
}

// ---------------------------------------------------------------------------
// Sequential interpretation
// ---------------------------------------------------------------------------

TEST(Interp, SequentialProgramRunsToCompletion) {
  auto r = exploreSource(R"(proc p() {
  var total = 0;
  for i in 1..10 { total += i; }
  var t = total * 2;
  while (t > 10) { t -= 10; }
  if (t == 0) { writeln("zero"); } else { writeln(t); }
})");
  EXPECT_TRUE(r.uaf_sites.empty());
  EXPECT_EQ(r.deadlock_schedules, 0u);
  EXPECT_TRUE(r.exhaustive);
}

TEST(Interp, CallsWithRefParamsMutateCaller) {
  // If ref params aliased incorrectly the loop would not terminate the way
  // the UAF-free run implies; completion without deadlock is the signal.
  auto r = exploreSource(R"(proc bump(ref v: int) { v += 1; }
proc p() {
  var x = 0;
  bump(x);
  bump(x);
  if (x != 2) {
    var never$: sync bool;
    never$;   // would deadlock if ref params were broken
  }
})");
  EXPECT_EQ(r.deadlock_schedules, 0u);
}

TEST(Interp, ValueParamsDoNotAliasCaller) {
  auto r = exploreSource(R"(proc tweak(v: int) { v += 100; }
proc p() {
  var x = 1;
  tweak(x);
  if (x != 1) {
    var never$: sync bool;
    never$;
  }
})");
  EXPECT_EQ(r.deadlock_schedules, 0u);
}

TEST(Interp, ReturnUnwindsNestedBlocks) {
  auto r = exploreSource(R"(proc f(): int {
  {
    var t = 1;
    if (t == 1) { return 5; }
  }
  return 6;
}
proc p() {
  f();
})");
  EXPECT_EQ(r.deadlock_schedules, 0u);
  EXPECT_TRUE(r.uaf_sites.empty());
}

// ---------------------------------------------------------------------------
// Concurrency + UAF detection
// ---------------------------------------------------------------------------

TEST(Interp, FireAndForgetProducesUaf) {
  auto r = exploreSource(R"(proc p() {
  var x = 1;
  begin with (ref x) { writeln(x); }
})");
  ASSERT_EQ(r.uaf_sites.size(), 1u);
  EXPECT_FALSE(r.uaf_sites[0].is_write);
  EXPECT_TRUE(r.exhaustive);
}

TEST(Interp, WriteUafFlaggedAsWrite) {
  auto r = exploreSource(R"(proc p() {
  var x = 1;
  begin with (ref x) { x = 2; }
})");
  ASSERT_EQ(r.uaf_sites.size(), 1u);
  EXPECT_TRUE(r.uaf_sites[0].is_write);
}

TEST(Interp, SyncHandshakePreventsUaf) {
  auto r = exploreSource(R"(proc p() {
  var x = 0;
  var d$: sync bool;
  begin with (ref x) { x = 42; d$ = true; }
  d$;
})");
  EXPECT_TRUE(r.uaf_sites.empty());
  EXPECT_TRUE(r.exhaustive);
}

TEST(Interp, SyncBlockFencesTasks) {
  auto r = exploreSource(R"(proc p() {
  var x = 0;
  sync {
    begin with (ref x) { x += 1; }
    begin with (ref x) { x += 2; }
  }
  writeln(x);
})");
  EXPECT_TRUE(r.uaf_sites.empty());
}

TEST(Interp, SyncBlockFencesTransitiveTasks) {
  auto r = exploreSource(R"(proc p() {
  var x = 0;
  sync {
    begin {
      begin with (ref x) { x += 1; }
    }
  }
})");
  EXPECT_TRUE(r.uaf_sites.empty());
}

TEST(Interp, InIntentCopiesValueAtSpawn) {
  auto r = exploreSource(R"(proc p() {
  var x = 1;
  begin with (in x) { writeln(x); }
})");
  EXPECT_TRUE(r.uaf_sites.empty());
}

TEST(Interp, AtomicWaitForSynchronizes) {
  auto r = exploreSource(R"(proc p() {
  var x = 1;
  var c: atomic int;
  begin with (ref x) { writeln(x); c.add(1); }
  c.waitFor(1);
})");
  EXPECT_TRUE(r.uaf_sites.empty());
}

TEST(Interp, LateAccessAfterSignalCaught) {
  auto r = exploreSource(R"(proc p() {
  var x = 0;
  var d$: sync bool;
  begin with (ref x) { x = 1; d$ = true; writeln(x); }
  d$;
})");
  ASSERT_EQ(r.uaf_sites.size(), 1u);
  EXPECT_EQ(r.uaf_sites[0].loc.line, 4u);
}

TEST(Interp, DeadlockDetected) {
  auto r = exploreSource(R"(proc p() {
  var never$: sync bool;
  never$;
})");
  EXPECT_GT(r.deadlock_schedules, 0u);
}

TEST(Interp, SingleVariableAllowsMultipleReads) {
  auto r = exploreSource(R"(proc p() {
  var x = 1;
  var s$: single bool;
  begin with (ref x) { x += 1; s$ = true; }
  s$;
  s$;
  writeln(x);
})");
  EXPECT_TRUE(r.uaf_sites.empty());
  EXPECT_EQ(r.deadlock_schedules, 0u);
}

TEST(Interp, SyncVariableSecondReadBlocks) {
  // sync (not single): the second read finds the variable empty -> deadlock.
  auto r = exploreSource(R"(proc p() {
  var d$: sync bool = true;
  d$;
  d$;
})");
  EXPECT_GT(r.deadlock_schedules, 0u);
}

TEST(Interp, InitiallyFullSyncReadSucceeds) {
  auto r = exploreSource(R"(proc p() {
  var d$: sync bool = true;
  d$;
})");
  EXPECT_EQ(r.deadlock_schedules, 0u);
}

TEST(Interp, NestedProcHiddenAccessUaf) {
  auto r = exploreSource(R"(proc p() {
  var x = 1;
  proc helper() { writeln(x); }
  begin { helper(); }
})");
  ASSERT_EQ(r.uaf_sites.size(), 1u);
}

TEST(Interp, ConfigEnumerationFindsBranchGatedUaf) {
  // Default flag=false hides the task; the oracle must enumerate configs.
  auto r = exploreSource(R"(config const go = false;
proc p() {
  var x = 1;
  if (go) {
    begin with (ref x) { writeln(x); }
  }
})");
  EXPECT_EQ(r.uaf_sites.size(), 1u);
}

TEST(Interp, SyncVarsAreUniversallyVisible) {
  // The sync variable outlives its scope (paper §II): signalling through it
  // after the parent exits is not itself a UAF.
  auto r = exploreSource(R"(proc p() {
  var outer$: sync bool;
  begin {
    var inner$: sync bool;
    begin {
      inner$ = true;
      outer$ = true;
    }
  }
  outer$;
})");
  EXPECT_TRUE(r.uaf_sites.empty());
}

// ---------------------------------------------------------------------------
// Oracle vs curated expectations
// ---------------------------------------------------------------------------

class OracleCase : public ::testing::TestWithParam<corpus::CuratedProgram> {};

TEST_P(OracleCase, TruePositiveCountMatches) {
  const corpus::CuratedProgram& p = GetParam();
  Pipeline pipeline;
  ASSERT_TRUE(pipeline.runSource(p.name, p.source))
      << pipeline.renderDiagnostics();
  rt::ExploreResult oracle =
      rt::exploreAll(*pipeline.module(), *pipeline.program(), {});
  std::size_t tp = 0;
  for (const ProcAnalysis& pa : pipeline.analysis().procs) {
    for (const UafWarning& w : pa.warnings) {
      if (oracle.sawUafAt(w.access_loc)) ++tp;
    }
  }
  EXPECT_EQ(tp, p.expected_true_positives);
}

INSTANTIATE_TEST_SUITE_P(
    Curated, OracleCase, ::testing::ValuesIn(corpus::curatedPrograms()),
    [](const ::testing::TestParamInfo<corpus::CuratedProgram>& info) {
      return info.param.name;
    });

TEST(Explore, DeterministicForSeed) {
  const char* src = R"(proc p() {
  var x = 0;
  var a$: sync bool;
  begin with (ref x) { x += 1; a$ = true; }
  begin with (ref x) { writeln(x); }
  a$;
})";
  auto r1 = exploreSource(src);
  auto r2 = exploreSource(src);
  EXPECT_EQ(r1.uaf_sites.size(), r2.uaf_sites.size());
  EXPECT_EQ(r1.schedules_run, r2.schedules_run);
}

TEST(Explore, ScheduleBudgetRespected) {
  rt::ExploreOptions opts;
  opts.max_schedules = 5;
  opts.random_schedules = 3;
  auto r = exploreSource(R"(proc p() {
  var x = 0;
  var a$: sync bool;
  var b$: sync bool;
  begin with (ref x) { x += 1; a$ = true; }
  begin with (ref x) { x += 2; b$ = true; }
  a$;
  b$;
})",
                         opts);
  // DFS capped at 5 per config; victim heuristics + random top-up add a
  // bounded number more.
  EXPECT_LE(r.schedules_run, 5u + 16u + 3u);
}

}  // namespace
}  // namespace cuaf
