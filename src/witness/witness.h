// Witness engine: turns every PPS use-after-free warning into a concrete
// interleaving counterexample, optionally replay-confirmed against the
// runtime interpreter.
//
// For each unsafe access the PPS exploration records the sink state that
// first reported it (pps::ReportSite). Walking that sink's TraceEntry
// parent chain back to the initial state yields one conservative
// serialization of the program's sync events under which the access
// outlives its scope; translated to source-level sync operations this is
// the warning's *schedule*.
//
// With replay enabled the schedule drives the step-wise interpreter
// (src/runtime/interp.*): the spawning task named by the warning is delayed
// as long as possible while the remaining tasks are steered along the
// schedule's sync events, over every enumerated config combination. A replay
// that triggers the interpreter's scope-exit poisoning at the warned access
// location *confirms* the warning concretely.
//
// Taxonomy (docs/WITNESS.md):
//   confirmed   — a replay reproduced the use-after-free at the access site;
//   tail        — not confirmed, and the access has no later sync event in
//                 its strand (trivially delayable past the scope end);
//   unconfirmed — not confirmed and not a tail. With `replayed` set this is
//                 a precision signal: the static schedule was infeasible (or
//                 out of replay budget) at runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ccfg/graph.h"
#include "src/pps/pps.h"

namespace cuaf {
struct Program;
}

namespace cuaf::witness {

enum class Verdict : std::uint8_t { Confirmed, Unconfirmed, Tail };

/// One source-level synchronization operation of a schedule step.
struct SyncStep {
  std::string var;  ///< sync/single/atomic variable name
  std::string op;   ///< "readFE", "readFF", "writeEF", "atomicFill", "atomicWait"
  SourceLoc loc;
};

/// One PPS transition along the counterexample path: the rule applied and
/// the sync operations of the CCFG nodes it executed (SINGLE-READ executes a
/// bunch, hence the vector).
struct ScheduleStep {
  pps::Rule rule = pps::Rule::Initial;
  std::vector<SyncStep> syncs;
};

struct Options {
  /// Extract a witness for every warning (forces pps::Options::record_trace).
  bool enabled = false;
  /// Replay each extracted schedule on the runtime interpreter.
  bool replay = false;
  /// Abort a single replay run after this many interpreter steps.
  std::size_t max_replay_steps = 50000;
  /// Upper bound on enumerated config-value combinations during replay
  /// (mirrors rt::ExploreOptions::max_config_combos).
  std::size_t max_config_combos = 8;
  /// Total interpreter-step budget across ALL replay runs of one witness
  /// (guided, unguided and victim-sweep attempts over every config combo).
  /// Independent of max_replay_steps so adversarial schedules cannot turn
  /// the combo × attempt product into an unbounded loop.
  std::size_t max_total_replay_steps = 500000;
  /// Checked between replay attempts and inside the replay loop
  /// (site "witness.replay").
  Deadline deadline;
};

struct Witness {
  Verdict verdict = Verdict::Unconfirmed;
  /// The access reached the PPS sink as a tail (no later sync event in its
  /// strand) rather than via OV.
  bool from_tail = false;
  /// A replay was attempted (distinguishes "infeasible" from "not replayed").
  bool replayed = false;
  /// Interpreter steps executed across all replay runs for this witness.
  std::size_t replay_steps = 0;
  /// Replay runs attempted (guided + fallback, across config combos).
  std::size_t replay_runs = 0;
  /// The happens-before oracle (src/hb/) agreed with every replay run's
  /// verdict: each confirming run's detector also flagged the access site.
  /// False is a hard error (a detector soundness bug), surfaced as
  /// hbAgrees:false here and counted in the report's hbDisagreements.
  bool hb_agrees = true;
  /// The extracted counterexample serialization, initial state omitted.
  std::vector<ScheduleStep> schedule;
  SourceLoc access_loc;
  std::string var_name;
  /// Non-None when replay was cut off by the deadline. Deliberately not part
  /// of toJson(): cached result bytes must not depend on timing.
  StopReason stopped = StopReason::None;
};

/// Builds one witness per `pps_result.unsafe` entry, in order (matching the
/// checker's warning order). Requires the result to have been produced with
/// record_trace; accesses missing a report site get an empty schedule.
/// `program` may be null, which disables replay regardless of options.
[[nodiscard]] std::vector<Witness> buildWitnesses(const ccfg::Graph& graph,
                                                  const pps::Result& pps_result,
                                                  const Program* program,
                                                  const Options& options);

[[nodiscard]] const char* verdictName(Verdict v);

/// Stable single-line JSON form (schema documented in docs/WITNESS.md):
/// {"verdict":...,"fromTail":...,"replayed":...,"replaySteps":N,
///  "replayRuns":N,"hbAgrees":...,"variable":...,"line":N,"column":N,
///  "schedule":[{"rule":...,"syncs":[{"var","op","line","column"}...]}...]}
/// Deliberately carries no file name so cached witnesses are byte-identical
/// across CLI paths and service item names.
[[nodiscard]] std::string toJson(const Witness& w);

}  // namespace cuaf::witness
