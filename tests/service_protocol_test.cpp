// Protocol layer: JSON parsing, request validation, response rendering
// (cross-checked with test_util.h's independent validator), volatile-field
// stripping and snapshot serialization.
#include "src/service/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "src/support/rng.h"
#include "test_util.h"

namespace cuaf::service {
namespace {

constexpr std::size_t kMaxBytes = 1 << 20;

JsonValue parseOk(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(parseJson(text, v, error)) << text << ": " << error;
  return v;
}

bool parseFails(const std::string& text) {
  JsonValue v;
  std::string error;
  return !parseJson(text, v, error);
}

TEST(JsonParser, ParsesScalars) {
  EXPECT_EQ(parseOk("null").kind, JsonValue::Kind::Null);
  EXPECT_TRUE(parseOk("true").boolean);
  EXPECT_FALSE(parseOk("false").boolean);
  EXPECT_DOUBLE_EQ(parseOk("-12.5e2").number, -1250.0);
  EXPECT_EQ(parseOk("\"hi\\n\\u0041\"").string, "hi\nA");
}

TEST(JsonParser, DecodesUnicodeEscapes) {
  EXPECT_EQ(parseOk("\"\\u00e9\"").string, "\xc3\xa9");
  EXPECT_EQ(parseOk("\"\\u20ac\"").string, "\xe2\x82\xac");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").string, "\xf0\x9f\x98\x80");
  EXPECT_TRUE(parseFails("\"\\ud83d\""));       // unpaired high surrogate
  EXPECT_TRUE(parseFails("\"\\ude00\""));       // unpaired low surrogate
  EXPECT_TRUE(parseFails("\"\\ud83d\\u0041\""));
}

TEST(JsonParser, ParsesNestedStructures) {
  JsonValue v = parseOk("{\"a\":[1,{\"b\":null},\"c\"],\"d\":{}}");
  ASSERT_EQ(v.kind, JsonValue::Kind::Object);
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[1].find("b")->kind, JsonValue::Kind::Null);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_TRUE(parseFails(""));
  EXPECT_TRUE(parseFails("{"));
  EXPECT_TRUE(parseFails("{\"a\"}"));
  EXPECT_TRUE(parseFails("[1,]"));
  EXPECT_TRUE(parseFails("\"unterminated"));
  EXPECT_TRUE(parseFails("{} extra"));
  EXPECT_TRUE(parseFails("\"bad\\x\""));
  EXPECT_TRUE(parseFails("tru"));
  EXPECT_TRUE(parseFails("\"raw\ncontrol\""));
}

TEST(JsonParser, BoundedDepthRejectsDeepNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_TRUE(parseFails(deep));
  // Depth within the bound still parses.
  std::string ok(32, '[');
  ok += "1";
  ok += std::string(32, ']');
  parseOk(ok);
}

// ---------------------------------------------------------------------------

TEST(ParseRequest, AnalyzeCarriesSourceNameAndOptions) {
  auto parsed = parseRequest(
      "{\"op\":\"analyze\",\"id\":7,\"name\":\"t.chpl\",\"source\":\"proc p() "
      "{}\",\"options\":{\"model_atomics\":true,\"prune\":false}}",
      kMaxBytes);
  ASSERT_TRUE(std::holds_alternative<Request>(parsed));
  const Request& r = std::get<Request>(parsed);
  EXPECT_EQ(r.op, Op::Analyze);
  EXPECT_EQ(r.id, 7);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0].name, "t.chpl");
  EXPECT_EQ(r.items[0].source, "proc p() {}");
  EXPECT_TRUE(r.options.build.model_atomics);
  EXPECT_FALSE(r.options.build.prune);
}

TEST(ParseRequest, OracleOptionSelectsOracleKind) {
  auto parsed = parseRequest(
      "{\"op\":\"analyze\",\"source\":\"proc p() {}\","
      "\"options\":{\"oracle\":\"hb\"}}",
      kMaxBytes);
  ASSERT_TRUE(std::holds_alternative<Request>(parsed));
  EXPECT_EQ(std::get<Request>(parsed).options.oracle, OracleKind::Hb);

  parsed = parseRequest(
      "{\"op\":\"analyze\",\"source\":\"\","
      "\"options\":{\"oracle\":\"enumerate\"}}",
      kMaxBytes);
  ASSERT_TRUE(std::holds_alternative<Request>(parsed));
  EXPECT_EQ(std::get<Request>(parsed).options.oracle, OracleKind::Enumerate);

  parsed = parseRequest(
      "{\"op\":\"analyze\",\"source\":\"\",\"options\":{\"oracle\":\"none\"}}",
      kMaxBytes);
  ASSERT_TRUE(std::holds_alternative<Request>(parsed));
  EXPECT_EQ(std::get<Request>(parsed).options.oracle, OracleKind::None);
}

TEST(ParseRequest, BatchItemsDefaultTheirNames) {
  auto parsed = parseRequest(
      "{\"op\":\"analyze_batch\",\"items\":[{\"source\":\"a\"},"
      "{\"name\":\"b.chpl\",\"source\":\"b\"}]}",
      kMaxBytes);
  ASSERT_TRUE(std::holds_alternative<Request>(parsed));
  const Request& r = std::get<Request>(parsed);
  EXPECT_EQ(r.op, Op::AnalyzeBatch);
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0].name, "<batch:0>");
  EXPECT_EQ(r.items[1].name, "b.chpl");
}

TEST(ParseRequest, ExplainCarriesKeyAndWarningIndex) {
  auto parsed = parseRequest(
      "{\"op\":\"explain\",\"id\":3,\"key\":\"00ff00ff00ff00ff\","
      "\"warning\":2}",
      kMaxBytes);
  ASSERT_TRUE(std::holds_alternative<Request>(parsed));
  const Request& r = std::get<Request>(parsed);
  EXPECT_EQ(r.op, Op::Explain);
  EXPECT_EQ(r.id, 3);
  EXPECT_EQ(r.key, 0x00ff00ff00ff00ffull);
  EXPECT_EQ(r.warning_index, 2u);
}

TEST(ParseRequest, ExplainWarningDefaultsToZero) {
  auto parsed = parseRequest(
      "{\"op\":\"explain\",\"key\":\"0123456789abcdef\"}", kMaxBytes);
  ASSERT_TRUE(std::holds_alternative<Request>(parsed));
  EXPECT_EQ(std::get<Request>(parsed).warning_index, 0u);
}

TEST(CacheKeyText, RoundTripsAndRejectsMalformedKeys) {
  for (std::uint64_t key :
       {0ull, 1ull, 0xdeadbeefcafef00dull, ~0ull}) {
    std::string text = formatCacheKey(key);
    EXPECT_EQ(text.size(), 16u);
    std::uint64_t back = 0;
    EXPECT_TRUE(parseCacheKey(text, back)) << text;
    EXPECT_EQ(back, key);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(parseCacheKey("", out));
  EXPECT_FALSE(parseCacheKey("123", out));                  // too short
  EXPECT_FALSE(parseCacheKey("00112233445566778", out));    // too long
  EXPECT_FALSE(parseCacheKey("001122334455667g", out));     // non-hex
  EXPECT_FALSE(parseCacheKey("0x11223344556677", out));     // 0x prefix
}

struct BadRequestCase {
  const char* line;
  const char* code;
};

class BadRequest : public ::testing::TestWithParam<BadRequestCase> {};

TEST_P(BadRequest, YieldsStructuredError) {
  auto parsed = parseRequest(GetParam().line, kMaxBytes);
  ASSERT_TRUE(std::holds_alternative<ProtocolError>(parsed))
      << GetParam().line;
  EXPECT_EQ(std::get<ProtocolError>(parsed).code, GetParam().code);
}

INSTANTIATE_TEST_SUITE_P(
    Protocol, BadRequest,
    ::testing::Values(
        BadRequestCase{"not json", "parse_error"},
        BadRequestCase{"[1,2,3]", "invalid_request"},
        BadRequestCase{"{\"op\":42}", "invalid_request"},
        BadRequestCase{"{}", "invalid_request"},
        BadRequestCase{"{\"op\":\"frobnicate\"}", "unknown_op"},
        BadRequestCase{"{\"op\":\"analyze\"}", "invalid_request"},
        BadRequestCase{"{\"op\":\"analyze\",\"source\":7}", "invalid_request"},
        BadRequestCase{"{\"op\":\"analyze\",\"id\":1.5,\"source\":\"\"}",
                       "invalid_request"},
        BadRequestCase{"{\"op\":\"analyze\",\"source\":\"\","
                       "\"options\":{\"bogus\":true}}",
                       "invalid_request"},
        BadRequestCase{"{\"op\":\"analyze\",\"source\":\"\","
                       "\"options\":{\"prune\":1}}",
                       "invalid_request"},
        BadRequestCase{"{\"op\":\"analyze\",\"source\":\"\","
                       "\"options\":{\"oracle\":\"bogus\"}}",
                       "invalid_request"},
        BadRequestCase{"{\"op\":\"analyze\",\"source\":\"\","
                       "\"options\":{\"oracle\":true}}",
                       "invalid_request"},
        BadRequestCase{"{\"op\":\"analyze_batch\",\"items\":[{}]}",
                       "invalid_request"},
        BadRequestCase{"{\"op\":\"analyze_batch\",\"items\":\"x\"}",
                       "invalid_request"},
        BadRequestCase{"{\"op\":\"explain\"}", "invalid_request"},
        BadRequestCase{"{\"op\":\"explain\",\"key\":42}", "invalid_request"},
        BadRequestCase{"{\"op\":\"explain\",\"key\":\"xyz\"}",
                       "invalid_request"},
        BadRequestCase{"{\"op\":\"explain\",\"key\":\"0123456789abcdef\","
                       "\"warning\":-1}",
                       "invalid_request"},
        BadRequestCase{"{\"op\":\"explain\",\"key\":\"0123456789abcdef\","
                       "\"warning\":1.5}",
                       "invalid_request"},
        BadRequestCase{"{\"op\":\"explain\",\"key\":\"0123456789abcdef\","
                       "\"warning\":\"0\"}",
                       "invalid_request"}));

TEST(ParseRequest, OversizedLineIsRejectedUpFront) {
  std::string big = "{\"op\":\"analyze\",\"source\":\"";
  big += std::string(4096, 'x');
  big += "\"}";
  auto parsed = parseRequest(big, 128);
  ASSERT_TRUE(std::holds_alternative<ProtocolError>(parsed));
  EXPECT_EQ(std::get<ProtocolError>(parsed).code, "oversized_request");
}

TEST(ParseRequest, ErrorEchoesRecoverableId) {
  auto parsed =
      parseRequest("{\"op\":\"nope\",\"id\":41}", kMaxBytes);
  ASSERT_TRUE(std::holds_alternative<ProtocolError>(parsed));
  EXPECT_EQ(std::get<ProtocolError>(parsed).id, 41);
}

// ---------------------------------------------------------------------------

AnalysisSnapshot sampleSnapshot() {
  AnalysisSnapshot snap;
  snap.frontend_ok = true;
  snap.warning_count = 2;
  snap.report_json = "{\n  \"warnings\": []\n}\n";
  snap.diagnostics = "t.chpl:3:5: warning: ...\n";
  return snap;
}

TEST(Render, ResponsesAreSingleLineWellFormedJson) {
  ItemResult item;
  item.name = "line\nbreak.chpl";  // name with a newline must stay escaped
  item.snapshot = sampleSnapshot();
  const std::string rendered[] = {
      renderAnalyzeResponse(1, item, 42),
      renderBatchResponse(2, {item, item}, 7),
      renderStatsResponse(3, CacheCounters{}),
      renderAckResponse(4, "cache_clear"),
      renderErrorResponse({"parse_error", "bad \"input\"\n", 5}),
      renderExplainResponse(6, 0xabcdefull, 1,
                            "{\"verdict\":\"confirmed\",\"schedule\":[]}"),
  };
  for (const std::string& response : rendered) {
    EXPECT_TRUE(test::jsonWellFormed(response)) << response;
    EXPECT_EQ(response.find('\n'), std::string::npos) << response;
  }
}

TEST(Render, FailedFrontEndRendersNullReport) {
  ItemResult item;
  item.name = "bad.chpl";
  item.snapshot.frontend_ok = false;
  item.snapshot.diagnostics = "bad.chpl:1:1: error: ...\n";
  std::string response = renderAnalyzeResponse(1, item, 0);
  EXPECT_TRUE(test::jsonWellFormed(response)) << response;
  EXPECT_NE(response.find("\"report\":null"), std::string::npos);
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
}

TEST(Render, StripVolatileRemovesOnlyCachedAndElapsed) {
  ItemResult cold;
  cold.name = "t.chpl";
  cold.snapshot = sampleSnapshot();
  ItemResult warm = cold;
  warm.cached = true;
  std::string a = renderAnalyzeResponse(1, cold, 111);
  std::string b = renderAnalyzeResponse(1, warm, 7);
  EXPECT_NE(a, b);
  EXPECT_EQ(stripVolatile(a), stripVolatile(b));
  EXPECT_TRUE(test::jsonWellFormed(stripVolatile(a))) << stripVolatile(a);
  EXPECT_EQ(stripVolatile(a).find("elapsed_us"), std::string::npos);
}

TEST(Render, StripVolatileIgnoresFieldLookalikesInsideStrings) {
  // A *source-controlled* string containing the text `"cached":false,` has
  // its quotes escaped by jsonEscape, so stripVolatile must not touch it.
  ItemResult item;
  item.name = "evil\"cached\":false,.chpl";
  item.snapshot.frontend_ok = false;
  item.snapshot.diagnostics = "literal \"elapsed_us\":9, in diagnostics";
  std::string stripped = stripVolatile(renderAnalyzeResponse(1, item, 3));
  EXPECT_TRUE(test::jsonWellFormed(stripped)) << stripped;
  EXPECT_NE(stripped.find("elapsed_us\\\":9"), std::string::npos);
}

// ---------------------------------------------------------------------------

TEST(Snapshot, SerializeDeserializeRoundTrips) {
  AnalysisSnapshot snap = sampleSnapshot();
  auto back = AnalysisSnapshot::deserialize(snap.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, snap);

  AnalysisSnapshot failed;
  failed.frontend_ok = false;
  failed.diagnostics = "err\n";
  back = AnalysisSnapshot::deserialize(failed.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, failed);
}

TEST(Render, ExplainEchoesKeyWarningAndWitness) {
  std::string response = renderExplainResponse(
      9, 0x0123456789abcdefull, 3, "{\"verdict\":\"tail\"}");
  EXPECT_TRUE(test::jsonWellFormed(response)) << response;
  EXPECT_NE(response.find("\"key\":\"0123456789abcdef\""), std::string::npos);
  EXPECT_NE(response.find("\"warning\":3"), std::string::npos);
  EXPECT_NE(response.find("\"witness\":{\"verdict\":\"tail\"}"),
            std::string::npos);
}

TEST(Snapshot, RoundTripsWitnessEntries) {
  AnalysisSnapshot snap = sampleSnapshot();
  snap.witness_json = {"{\"verdict\":\"confirmed\"}",
                       "{\"verdict\":\"tail\",\"schedule\":[]}"};
  auto back = AnalysisSnapshot::deserialize(snap.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, snap);
  ASSERT_EQ(back->witness_json.size(), 2u);
  EXPECT_EQ(back->witness_json[1], snap.witness_json[1]);

  // Equality is witness-aware: dropping an entry must be visible.
  AnalysisSnapshot fewer = snap;
  fewer.witness_json.pop_back();
  EXPECT_FALSE(fewer == snap);
}

TEST(Snapshot, DeserializeRejectsCorruptPayloads) {
  EXPECT_FALSE(AnalysisSnapshot::deserialize("").has_value());
  EXPECT_FALSE(AnalysisSnapshot::deserialize("garbage").has_value());
  EXPECT_FALSE(AnalysisSnapshot::deserialize("CUAF9\n1\n0\n0\n").has_value());
  std::string payload = sampleSnapshot().serialize();
  EXPECT_FALSE(
      AnalysisSnapshot::deserialize(payload.substr(0, payload.size() / 2))
          .has_value());
  // A witness count larger than the remaining payload must be rejected, not
  // trusted as an allocation size; same for an oversized per-entry size.
  EXPECT_FALSE(
      AnalysisSnapshot::deserialize("CUAF2\n1\n0\n0\n999999\n").has_value());
  EXPECT_FALSE(
      AnalysisSnapshot::deserialize("CUAF2\n1\n0\n0\n1\n500\nxy").has_value());
}

TEST(Fingerprint, DistinguishesEveryProtocolOption) {
  AnalysisOptions base;
  std::uint64_t base_fp = optionsFingerprint(base);
  AnalysisOptions o = base;
  o.build.prune = !o.build.prune;
  EXPECT_NE(optionsFingerprint(o), base_fp);
  o = base;
  o.pps.merge_equivalent = !o.pps.merge_equivalent;
  EXPECT_NE(optionsFingerprint(o), base_fp);
  o = base;
  o.pps.report_deadlocks = !o.pps.report_deadlocks;
  EXPECT_NE(optionsFingerprint(o), base_fp);
  o = base;
  o.build.model_atomics = !o.build.model_atomics;
  EXPECT_NE(optionsFingerprint(o), base_fp);
  o = base;
  o.build.unroll_loops = !o.build.unroll_loops;
  EXPECT_NE(optionsFingerprint(o), base_fp);
  o = base;
  o.witness.enabled = !o.witness.enabled;
  EXPECT_NE(optionsFingerprint(o), base_fp);
  o = base;
  o.witness.replay = !o.witness.replay;
  EXPECT_NE(optionsFingerprint(o), base_fp);
  o = base;
  o.witness.max_replay_steps += 1;
  EXPECT_NE(optionsFingerprint(o), base_fp);
  EXPECT_EQ(optionsFingerprint(base), base_fp);  // stable across calls
}

TEST(Fingerprint, CacheKeySeparatesNameSourceAndOptions) {
  AnalysisOptions options;
  std::uint64_t key = analysisCacheKey("a.chpl", "proc p() {}", options);
  EXPECT_NE(analysisCacheKey("b.chpl", "proc p() {}", options), key);
  EXPECT_NE(analysisCacheKey("a.chpl", "proc q() {}", options), key);
  AnalysisOptions other;
  other.build.model_atomics = false;  // defaults are on; toggling must rekey
  EXPECT_NE(analysisCacheKey("a.chpl", "proc p() {}", other), key);
  AnalysisOptions no_loops;
  no_loops.build.model_sync_loops = false;
  EXPECT_NE(analysisCacheKey("a.chpl", "proc p() {}", no_loops), key);
  AnalysisOptions bound;
  bound.build.loop_bound = 7;
  EXPECT_NE(analysisCacheKey("a.chpl", "proc p() {}", bound), key);
  EXPECT_EQ(analysisCacheKey("a.chpl", "proc p() {}", options), key);
}

// Parser-level fuzz: random and truncated documents must never crash and
// must report failure for anything the validator also rejects.
TEST(JsonParser, FuzzRandomAndTruncatedInputs) {
  Rng rng(0xfeedu);
  const std::string seeds[] = {
      "{\"op\":\"analyze\",\"id\":1,\"source\":\"proc p() {}\"}",
      "{\"op\":\"analyze_batch\",\"items\":[{\"source\":\"x\"}]}",
      "{\"op\":\"stats\"}",
      "{\"op\":\"explain\",\"key\":\"0123456789abcdef\",\"warning\":0}",
      "[{\"a\":[true,null,1.5e2,\"\\u0041\"]}]",
  };
  for (int iter = 0; iter < 1500; ++iter) {
    std::string input;
    switch (rng.below(3)) {
      case 0: {  // random printable + structural bytes
        const char alphabet[] = "{}[]\":,\\0123456789.eE+-truefalsn \n\t\"";
        std::size_t len = rng.below(64);
        for (std::size_t i = 0; i < len; ++i) {
          input += alphabet[rng.below(sizeof(alphabet) - 1)];
        }
        break;
      }
      case 1: {  // truncated valid request
        const std::string& seed = seeds[rng.below(std::size(seeds))];
        input = seed.substr(0, rng.below(seed.size() + 1));
        break;
      }
      default: {  // raw bytes, including NUL and high bit
        std::size_t len = rng.below(48);
        for (std::size_t i = 0; i < len; ++i) {
          input += static_cast<char>(rng.below(256));
        }
        break;
      }
    }
    JsonValue v;
    std::string error;
    bool parsed = parseJson(input, v, error);
    if (parsed) {
      EXPECT_TRUE(test::jsonWellFormed(input)) << input;
    }
  }
}

// Request-level fuzz over explain-shaped lines: mutated keys, indices and
// structure must always come back as a Request or a structured error whose
// rendering is well-formed — never a crash.
TEST(ParseRequest, FuzzExplainShapedInputsYieldStructuredResults) {
  Rng rng(0xace1u);
  const std::string seed =
      "{\"op\":\"explain\",\"id\":1,\"key\":\"0123456789abcdef\","
      "\"warning\":2}";
  for (int iter = 0; iter < 800; ++iter) {
    std::string input = seed;
    std::size_t mutations = 1 + rng.below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      if (input.empty()) break;
      std::size_t pos = rng.below(input.size());
      switch (rng.below(3)) {
        case 0: input[pos] = static_cast<char>(rng.below(256)); break;
        case 1: input = input.substr(0, pos); break;
        default: input.insert(pos, 1, "{}[]\":,x9"[rng.below(9)]); break;
      }
    }
    auto parsed = parseRequest(input, kMaxBytes);
    if (std::holds_alternative<ProtocolError>(parsed)) {
      const ProtocolError& e = std::get<ProtocolError>(parsed);
      EXPECT_FALSE(e.code.empty()) << input;
      EXPECT_TRUE(test::jsonWellFormed(renderErrorResponse(e))) << input;
    }
  }
}

}  // namespace
}  // namespace cuaf::service
