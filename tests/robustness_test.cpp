// Robustness: the front end must never crash, hang, or mis-handle hostile
// input — it reports diagnostics and returns. These tests feed mutated and
// random inputs through the full pipeline.
#include <gtest/gtest.h>

#include "src/analysis/pipeline.h"
#include "src/corpus/curated.h"
#include "src/corpus/generator.h"
#include "src/support/rng.h"

namespace cuaf {
namespace {

// Running the pipeline must terminate and either succeed or report errors;
// it must never crash.
void runHostile(const std::string& source) {
  Pipeline pipeline;
  bool ok = pipeline.runSource("hostile.chpl", source);
  if (!ok) {
    EXPECT_TRUE(pipeline.diags().hasErrors());
  }
}

TEST(Robustness, EmptyInput) { runHostile(""); }

TEST(Robustness, OnlyComment) { runHostile("// nothing here\n"); }

TEST(Robustness, OnlyWhitespace) { runHostile("  \n\t\n   \n"); }

TEST(Robustness, UnbalancedBraces) {
  runHostile("proc p() { { { var x = 1; }");
  runHostile("proc p() } }");
  runHostile("}}}}{{{{");
}

TEST(Robustness, TruncatedConstructs) {
  runHostile("proc");
  runHostile("proc p(");
  runHostile("proc p() { var");
  runHostile("proc p() { begin with (");
  runHostile("proc p() { begin with (ref");
  runHostile("proc p() { if (");
  runHostile("proc p() { for i in 1..");
  runHostile("config const");
}

TEST(Robustness, WrongTokensEverywhere) {
  runHostile("proc 123() { }");
  runHostile("proc p() { 1 = x; }");
  runHostile("proc p() { var = 3; }");
  runHostile("proc p() { begin begin begin; }");
  runHostile("proc p() { sync sync sync { } }");
}

TEST(Robustness, DeepNesting) {
  std::string src = "proc p() { var x = 1; ";
  for (int i = 0; i < 200; ++i) src += "{ ";
  src += "writeln(x); ";
  for (int i = 0; i < 200; ++i) src += "} ";
  src += "}";
  runHostile(src);
}

TEST(Robustness, DeepExpressionNesting) {
  std::string src = "proc p() { var x = ";
  for (int i = 0; i < 300; ++i) src += "(1 + ";
  src += "1";
  for (int i = 0; i < 300; ++i) src += ")";
  src += "; }";
  runHostile(src);
}

TEST(Robustness, LongIdentifiers) {
  std::string name(4000, 'a');
  runHostile("proc " + name + "() { var " + name + "x = 1; writeln(" + name +
             "x); }");
}

TEST(Robustness, ManyStatements) {
  std::string src = "proc p() {\n";
  for (int i = 0; i < 2000; ++i) {
    src += "  var v" + std::to_string(i) + " = " + std::to_string(i) + ";\n";
  }
  src += "}\n";
  Pipeline pipeline;
  EXPECT_TRUE(pipeline.runSource("big.chpl", src));
}

// Byte-level fuzzing: random printable garbage.
class FuzzBytes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzBytes, NeverCrashes) {
  Rng rng(GetParam());
  const char alphabet[] =
      "abcxyz $#{}()+-*/=<>!&|;:.\"\n\t0123456789procvarbeginsync";
  for (int round = 0; round < 40; ++round) {
    std::size_t len = rng.below(300);
    std::string src;
    for (std::size_t i = 0; i < len; ++i) {
      src += alphabet[rng.below(sizeof(alphabet) - 1)];
    }
    runHostile(src);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBytes,
                         ::testing::Values(101, 202, 303, 404));

// Mutation fuzzing: curated programs with random edits stay crash-free.
class FuzzMutations : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzMutations, NeverCrashes) {
  Rng rng(GetParam());
  const auto& programs = corpus::curatedPrograms();
  for (int round = 0; round < 60; ++round) {
    std::string src =
        programs[rng.below(programs.size())].source;
    std::size_t edits = 1 + rng.below(5);
    for (std::size_t e = 0; e < edits && !src.empty(); ++e) {
      std::size_t pos = rng.below(src.size());
      switch (rng.below(3)) {
        case 0: src.erase(pos, 1); break;
        case 1: src.insert(pos, 1, static_cast<char>('!' + rng.below(90))); break;
        default: src[pos] = static_cast<char>('!' + rng.below(90)); break;
      }
    }
    runHostile(src);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMutations,
                         ::testing::Values(11, 22, 33, 44));

TEST(Robustness, GeneratorNeverEmitsInvalid) {
  // Wider sweep than the corpus test: 1500 programs across varied options.
  corpus::GeneratorOptions dense;
  dense.begin_pm = 1000;
  dense.warned_pm = 800;
  dense.nest_pm = 600;
  dense.branch_pm = 500;
  corpus::ProgramGenerator gen(424242, dense);
  for (int i = 0; i < 1500; ++i) {
    corpus::GeneratedProgram p = gen.next();
    Pipeline pipeline;
    ASSERT_TRUE(pipeline.runSource(p.name, p.source)) << p.source;
  }
}

}  // namespace
}  // namespace cuaf
