// Ablation: CCFG pruning rules A-D (§III.A).
//
// Over fenced-task programs and a generated corpus slice, compares tasks
// pruned, PPS states explored, and warnings with pruning on vs off.
// Disabling pruning loses the sync-block reasoning, so it both explores more
// states and reports strictly more (conservative) warnings.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_util.h"
#include "src/analysis/pipeline.h"
#include "src/corpus/generator.h"

namespace {

struct Outcome {
  std::size_t warnings = 0;
  std::size_t pps_states = 0;
  std::size_t pruned = 0;
};

Outcome analyze(const std::string& src, bool prune) {
  cuaf::AnalysisOptions opts;
  opts.build.prune = prune;
  cuaf::Pipeline pipeline(opts);
  if (!pipeline.runSource("bench.chpl", src)) std::abort();
  Outcome o;
  for (const cuaf::ProcAnalysis& pa : pipeline.analysis().procs) {
    o.warnings += pa.warnings.size();
    o.pps_states += pa.pps_states;
    o.pruned += pa.pruned_tasks;
  }
  return o;
}

void BM_PruningOn(benchmark::State& state) {
  std::string src = cuaf::bench::fencedProgram(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Outcome o = analyze(src, true);
    benchmark::DoNotOptimize(o);
  }
}

void BM_PruningOff(benchmark::State& state) {
  std::string src = cuaf::bench::fencedProgram(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Outcome o = analyze(src, false);
    benchmark::DoNotOptimize(o);
  }
}

}  // namespace

BENCHMARK(BM_PruningOn)->DenseRange(2, 10, 2);
BENCHMARK(BM_PruningOff)->DenseRange(2, 10, 2);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::cout << "\n=== Pruning ablation: fenced-task programs ===\n";
  std::cout << "tasks  pruned  warn(on)  warn(off)  pps(on)  pps(off)\n";
  for (int tasks = 2; tasks <= 10; tasks += 2) {
    std::string src = cuaf::bench::fencedProgram(tasks);
    Outcome on = analyze(src, true);
    Outcome off = analyze(src, false);
    std::printf("%5d  %6zu  %8zu  %9zu  %7zu  %8zu\n", tasks, on.pruned,
                on.warnings, off.warnings, on.pps_states, off.pps_states);
  }

  std::cout << "\n=== Pruning ablation: generated corpus (500 programs) ===\n";
  cuaf::corpus::GeneratorOptions gopts;
  gopts.begin_pm = 500;  // denser corpus for the ablation
  cuaf::corpus::ProgramGenerator gen(7, gopts);
  Outcome total_on, total_off;
  for (int i = 0; i < 500; ++i) {
    cuaf::corpus::GeneratedProgram p = gen.next();
    Outcome on = analyze(p.source, true);
    Outcome off = analyze(p.source, false);
    total_on.warnings += on.warnings;
    total_on.pps_states += on.pps_states;
    total_on.pruned += on.pruned;
    total_off.warnings += off.warnings;
    total_off.pps_states += off.pps_states;
  }
  std::printf("with pruning:    %zu warnings, %zu PPS states, %zu tasks pruned\n",
              total_on.warnings, total_on.pps_states, total_on.pruned);
  std::printf("without pruning: %zu warnings, %zu PPS states\n",
              total_off.warnings, total_off.pps_states);
  return 0;
}
