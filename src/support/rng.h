// Deterministic, seedable PRNG (xorshift64*): reproducible corpora and
// schedules without global state.
#pragma once

#include <cstdint>

namespace cuaf {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  std::uint64_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_ * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

  /// Uniform in [lo, hi] (inclusive).
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// True with probability per-mille `pm` (0..1000).
  bool chance(unsigned pm) { return below(1000) < pm; }

 private:
  std::uint64_t state_;
};

}  // namespace cuaf
