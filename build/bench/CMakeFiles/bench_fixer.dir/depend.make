# Empty dependencies file for bench_fixer.
# This may be replaced when dependencies are built.
