file(REMOVE_RECURSE
  "CMakeFiles/chpl-uaf.dir/chpl_uaf_main.cpp.o"
  "CMakeFiles/chpl-uaf.dir/chpl_uaf_main.cpp.o.d"
  "chpl-uaf"
  "chpl-uaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chpl-uaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
