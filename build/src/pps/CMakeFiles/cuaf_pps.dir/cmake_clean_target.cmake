file(REMOVE_RECURSE
  "libcuaf_pps.a"
)
