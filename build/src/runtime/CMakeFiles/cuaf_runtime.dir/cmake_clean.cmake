file(REMOVE_RECURSE
  "CMakeFiles/cuaf_runtime.dir/explore.cpp.o"
  "CMakeFiles/cuaf_runtime.dir/explore.cpp.o.d"
  "CMakeFiles/cuaf_runtime.dir/interp.cpp.o"
  "CMakeFiles/cuaf_runtime.dir/interp.cpp.o.d"
  "CMakeFiles/cuaf_runtime.dir/value.cpp.o"
  "CMakeFiles/cuaf_runtime.dir/value.cpp.o.d"
  "libcuaf_runtime.a"
  "libcuaf_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuaf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
