// Unit tests for the src/net/ layer: EventLoop wake/post semantics, Conn
// framing (partial reads, coalesced frames, oversized lines, half-close,
// slow-writer backpressure, out-of-order completion), and the consistent-
// hash shard router. Labeled `net`: runs under the tsan preset, since the
// loop-thread/post contract is exactly what TSan should see.
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/net/address.h"
#include "src/net/backoff.h"
#include "src/net/breaker.h"
#include "src/net/conn.h"
#include "src/net/event_loop.h"
#include "src/net/hash_ring.h"
#include "src/net/listener.h"
#include "src/net/shard_client.h"

namespace cuaf::net {
namespace {

// ---------------------------------------------------------------------------
// EventLoop basics.

TEST(EventLoop, PostFromAnotherThreadRunsOnTheLoop) {
  EventLoop loop;
  std::atomic<int> ran{0};
  std::thread runner([&loop] { loop.run(); });
  std::thread poster([&] {
    for (int i = 0; i < 100; ++i) {
      loop.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    loop.post([&loop] { loop.stop(); });
  });
  poster.join();
  runner.join();
  EXPECT_EQ(ran.load(), 100);
}

TEST(EventLoop, StopWakesABlockedLoop) {
  EventLoop loop;
  std::thread runner([&loop] { loop.run(); });
  // No fds, no posts: the loop is parked in epoll_wait. stop() must wake it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  loop.stop();
  runner.join();
  EXPECT_TRUE(loop.stopped());
}

// ---------------------------------------------------------------------------
// Conn harness: a live loop thread, a Conn over one end of a socketpair,
// and the test thread playing the client over the blocking other end.
// Handler state (frames_, auto echo) lives on the loop thread; the test
// thread touches it only through onLoop()/waitOnLoop(), which synchronize
// through EventLoop::post.

void setNonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  ASSERT_GE(flags, 0);
  ASSERT_EQ(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0);
}

class ConnHarness {
 public:
  explicit ConnHarness(ConnOptions options = {}) {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    client_fd_ = fds[0];
    server_fd_ = fds[1];
    setNonblocking(server_fd_);
    thread_ = std::thread([this] { loop_.run(); });
    onLoop([this, options] {
      Conn::Handler handler;
      handler.on_frame = [this](Conn& conn, std::uint64_t seq,
                                std::string&& line) {
        frames_.emplace_back(seq, line);
        if (auto_echo_) conn.completeRequest(seq, echo_prefix_ + line);
      };
      handler.on_oversized = [this](Conn&) {
        ++oversized_count_;
        return std::string("{\"error\":\"oversized\"}");
      };
      handler.on_close = [this](Conn&) {
        closed_.store(true, std::memory_order_release);
        // Destroying the Conn from inside its own callback is not safe;
        // defer exactly like the daemon does.
        loop_.post([this] { conn_.reset(); });
      };
      conn_ = std::make_unique<Conn>(loop_, server_fd_, options,
                                     std::move(handler));
    });
  }

  ~ConnHarness() {
    onLoop([this] { conn_.reset(); });
    loop_.stop();
    thread_.join();
    if (client_fd_ >= 0) ::close(client_fd_);
  }

  /// Runs `fn` on the loop thread and waits for it to finish.
  template <typename Fn>
  void onLoop(Fn&& fn) {
    std::promise<void> done;
    loop_.post([&] {
      fn();
      done.set_value();
    });
    done.get_future().wait();
  }

  /// Polls `pred` on the loop thread until it holds (or times out).
  template <typename Pred>
  bool waitOnLoop(Pred&& pred, int timeout_ms = 10000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      bool ok = false;
      onLoop([&] { ok = pred(); });
      if (ok) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

  void setAutoEcho(bool on, std::string prefix = "echo:") {
    onLoop([this, on, prefix = std::move(prefix)] {
      auto_echo_ = on;
      echo_prefix_ = prefix;
    });
  }

  void clientSend(std::string_view bytes) {
    while (!bytes.empty()) {
      ssize_t n = ::send(client_fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      bytes.remove_prefix(static_cast<std::size_t>(n));
    }
  }

  /// Blocking read of one '\n'-terminated line (newline stripped). Empty
  /// string means EOF.
  std::string clientReadLine() {
    std::string line;
    char c;
    while (true) {
      ssize_t n = ::read(client_fd_, &c, 1);
      if (n <= 0) return {};
      if (c == '\n') return line;
      line += c;
    }
  }

  void clientShutdownWrite() { ::shutdown(client_fd_, SHUT_WR); }
  void clientClose() {
    ::close(client_fd_);
    client_fd_ = -1;
  }

  [[nodiscard]] int clientFd() const { return client_fd_; }
  EventLoop& loop() { return loop_; }
  Conn* conn() { return conn_.get(); }  // loop thread only
  [[nodiscard]] bool closedFlag() const {
    return closed_.load(std::memory_order_acquire);
  }

  // Loop-thread state; access via onLoop/waitOnLoop.
  std::vector<std::pair<std::uint64_t, std::string>> frames_;
  int oversized_count_ = 0;
  bool auto_echo_ = true;
  std::string echo_prefix_ = "echo:";

 private:
  EventLoop loop_;
  std::thread thread_;
  std::unique_ptr<Conn> conn_;
  int client_fd_ = -1;
  int server_fd_ = -1;
  std::atomic<bool> closed_{false};
};

TEST(Conn, PartialReadsAssembleOneFrame) {
  ConnHarness h;
  const std::string request = "{\"op\":\"ping\"}";
  // Dribble the line one byte at a time; no frame until the newline lands.
  for (char c : request) {
    h.clientSend(std::string_view(&c, 1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  h.onLoop([&] { EXPECT_TRUE(h.frames_.empty()); });
  h.clientSend("\n");
  EXPECT_EQ(h.clientReadLine(), "echo:" + request);
  h.onLoop([&] {
    ASSERT_EQ(h.frames_.size(), 1u);
    EXPECT_EQ(h.frames_[0].second, request);
  });
}

TEST(Conn, CoalescedFramesAreEachAnsweredInOrder) {
  ConnHarness h;
  std::string blob;
  for (int i = 0; i < 16; ++i) {
    blob += "req" + std::to_string(i) + "\n";
  }
  h.clientSend(blob);  // one send carries 16 frames
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(h.clientReadLine(), "echo:req" + std::to_string(i));
  }
}

TEST(Conn, CrLfAndBlankLinesAreSkippedWithoutConsumingSequence) {
  ConnHarness h;
  h.clientSend("\r\n\nfirst\r\nsecond\n");
  EXPECT_EQ(h.clientReadLine(), "echo:first");
  EXPECT_EQ(h.clientReadLine(), "echo:second");
  h.onLoop([&] {
    ASSERT_EQ(h.frames_.size(), 2u);
    EXPECT_EQ(h.frames_[0].first, 0u);  // blank lines consumed no seq
    EXPECT_EQ(h.frames_[1].first, 1u);
  });
}

TEST(Conn, OutOfOrderCompletionWritesResponsesInRequestOrder) {
  ConnHarness h;
  h.setAutoEcho(false);
  h.clientSend("a\nb\nc\nd\n");
  ASSERT_TRUE(h.waitOnLoop([&] { return h.frames_.size() == 4; }));
  // Complete in reverse: the client must still read a, b, c, d order.
  h.onLoop([&] {
    for (int i = 3; i >= 0; --i) {
      auto& [seq, line] = h.frames_[static_cast<std::size_t>(i)];
      h.conn()->completeRequest(seq, "ans:" + line);
    }
  });
  EXPECT_EQ(h.clientReadLine(), "ans:a");
  EXPECT_EQ(h.clientReadLine(), "ans:b");
  EXPECT_EQ(h.clientReadLine(), "ans:c");
  EXPECT_EQ(h.clientReadLine(), "ans:d");
}

TEST(Conn, OversizedLineGetsStructuredErrorWithoutDesync) {
  ConnOptions options;
  options.max_line_bytes = 32;
  ConnHarness h(options);
  // An oversized line split across sends, then a normal request: the
  // oversized line is answered once in its slot and the stream stays in
  // sync for everything after it.
  std::string big(100, 'x');
  h.clientSend(big.substr(0, 50));
  h.clientSend(big.substr(50) + "\nafter\n");
  EXPECT_EQ(h.clientReadLine(), "{\"error\":\"oversized\"}");
  EXPECT_EQ(h.clientReadLine(), "echo:after");
  h.onLoop([&] {
    EXPECT_EQ(h.oversized_count_, 1);  // answered once, not per chunk
    ASSERT_EQ(h.frames_.size(), 1u);
    EXPECT_EQ(h.frames_[0].second, "after");
    EXPECT_EQ(h.frames_[0].first, 1u);  // the oversized line took seq 0
  });
}

TEST(Conn, EofFinalFrameWithoutNewlineIsDelivered) {
  ConnHarness h;
  h.clientSend("complete\nfinal-without-newline");
  h.clientShutdownWrite();
  EXPECT_EQ(h.clientReadLine(), "echo:complete");
  EXPECT_EQ(h.clientReadLine(), "echo:final-without-newline");
  // Graceful half-close: all frames answered, then the server closes.
  EXPECT_EQ(h.clientReadLine(), "");  // EOF
  ASSERT_TRUE(h.waitOnLoop([&] { return h.conn() == nullptr; }));
  EXPECT_TRUE(h.closedFlag());
}

TEST(Conn, HalfCloseWaitsForPendingCompletions) {
  ConnHarness h;
  h.setAutoEcho(false);
  h.clientSend("slow\n");
  h.clientShutdownWrite();
  ASSERT_TRUE(h.waitOnLoop([&] { return h.frames_.size() == 1; }));
  // The client already half-closed, but its delivered frame is still in
  // flight: the connection must stay open until the answer is flushed.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  h.onLoop([&] {
    ASSERT_NE(h.conn(), nullptr);
    EXPECT_FALSE(h.conn()->closed());
    h.conn()->completeRequest(h.frames_[0].first, "late-answer");
  });
  EXPECT_EQ(h.clientReadLine(), "late-answer");
  EXPECT_EQ(h.clientReadLine(), "");  // then EOF
  ASSERT_TRUE(h.waitOnLoop([&] { return h.conn() == nullptr; }));
}

TEST(Conn, SlowWriterBackpressurePausesAndResumesReading) {
  ConnOptions options;
  options.write_high_water = 2048;
  ConnHarness h(options);
  // Each request is answered with ~32 KiB. The client pipelines 64
  // requests without reading a byte, so pending responses overflow the
  // kernel socket buffer, cross the high-water mark, and pause intake
  // instead of buffering without bound.
  const std::string payload(32 << 10, 'p');
  h.setAutoEcho(true, payload + ":");
  std::string blob;
  for (int i = 0; i < 64; ++i) {
    blob += "r" + std::to_string(i) + "\n";
  }
  h.clientSend(blob);
  ASSERT_TRUE(h.waitOnLoop([&] {
    return h.conn() != nullptr && h.conn()->readPaused() &&
           h.conn()->pendingWriteBytes() > options.write_high_water;
  }));
  // While paused, some requests are still unread: not every frame has
  // been delivered yet, which is exactly the bounded-memory guarantee.
  bool some_undelivered = false;
  h.onLoop([&] { some_undelivered = h.frames_.size() < 64; });
  EXPECT_TRUE(some_undelivered);
  // Drain as the client: every response arrives intact and in order, and
  // intake resumes to serve the tail.
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(h.clientReadLine(), payload + ":r" + std::to_string(i));
  }
  ASSERT_TRUE(h.waitOnLoop([&] {
    return h.frames_.size() == 64 && !h.conn()->readPaused();
  }));
}

TEST(Conn, ClientDisconnectWithUnreadResponsesClosesQuietly) {
  ConnHarness h;
  h.setAutoEcho(false);
  h.clientSend("q1\nq2\n");
  ASSERT_TRUE(h.waitOnLoop([&] { return h.frames_.size() == 2; }));
  h.clientClose();  // vanish before reading anything
  h.onLoop([&] {
    h.conn()->completeRequest(h.frames_[0].first, std::string(1 << 20, 'z'));
    if (h.conn() != nullptr) {
      h.conn()->completeRequest(h.frames_[1].first, "tail");
    }
  });
  // The write fails (EPIPE/ECONNRESET); the connection closes without
  // taking the loop down — that is the daemon-survival contract.
  ASSERT_TRUE(h.waitOnLoop([&] { return h.conn() == nullptr; }));
  EXPECT_TRUE(h.closedFlag());
  // The loop is still serviceable after the failed connection.
  bool alive = false;
  h.onLoop([&] { alive = true; });
  EXPECT_TRUE(alive);
}

TEST(Conn, AbortDropsBufferedDataAndFiresOnClose) {
  ConnHarness h;
  h.setAutoEcho(false);
  h.clientSend("x\n");
  ASSERT_TRUE(h.waitOnLoop([&] { return h.frames_.size() == 1; }));
  h.onLoop([&] { h.conn()->abort(); });
  ASSERT_TRUE(h.waitOnLoop([&] { return h.conn() == nullptr; }));
  EXPECT_TRUE(h.closedFlag());
  EXPECT_EQ(h.clientReadLine(), "");  // client sees EOF, no partial bytes
}

// ---------------------------------------------------------------------------
// HashRing.

TEST(HashRing, RoutingIsDeterministicAcrossInstances) {
  HashRing a(8), b(8);
  for (std::uint64_t key = 0; key < 4096; ++key) {
    EXPECT_EQ(a.route(key * 0x9e3779b97f4a7c15ull),
              b.route(key * 0x9e3779b97f4a7c15ull));
  }
}

TEST(HashRing, EveryShardOwnsAReasonableSlice) {
  constexpr std::size_t kShards = 8;
  constexpr std::size_t kKeys = 20000;
  HashRing ring(kShards);
  std::vector<std::size_t> counts(kShards, 0);
  for (std::size_t i = 0; i < kKeys; ++i) {
    ++counts[ring.route(0xabcdef12345ull + i * 7919)];
  }
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    // Perfect balance would be 12.5%; virtual points keep every shard
    // above a few percent (no starved or runaway shard).
    EXPECT_GT(counts[shard], kKeys / 33) << "shard " << shard;
    EXPECT_LT(counts[shard], kKeys / 3) << "shard " << shard;
  }
}

TEST(HashRing, DeadShardRemapsOnlyItsOwnKeys) {
  constexpr std::size_t kShards = 5;
  constexpr std::size_t kKeys = 8000;
  HashRing ring(kShards);
  std::vector<std::size_t> before(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) {
    before[i] = ring.route(i * 0x100000001b3ull);
  }
  const std::size_t victim = 2;
  ring.markDead(victim);
  EXPECT_EQ(ring.aliveCount(), kShards - 1);
  for (std::size_t i = 0; i < kKeys; ++i) {
    std::size_t now = ring.route(i * 0x100000001b3ull);
    if (before[i] == victim) {
      EXPECT_NE(now, victim);  // re-homed somewhere alive
    } else {
      // Consistency: keys not owned by the dead shard never move.
      EXPECT_EQ(now, before[i]) << "key index " << i;
    }
  }
  ring.markAlive(victim);
  for (std::size_t i = 0; i < kKeys; ++i) {
    EXPECT_EQ(ring.route(i * 0x100000001b3ull), before[i]);
  }
}

TEST(HashRing, SurvivesAllButOneShardDead) {
  HashRing ring(4);
  ring.markDead(0);
  ring.markDead(2);
  ring.markDead(3);
  for (std::uint64_t key = 0; key < 512; ++key) {
    EXPECT_EQ(ring.route(key), 1u);
  }
}

TEST(HashRing, ShardSocketPathFormats) {
  EXPECT_EQ(shardSocketPath("/tmp/a.sock", 0, 1), "/tmp/a.sock");
  EXPECT_EQ(shardSocketPath("/tmp/a.sock", 0, 0), "/tmp/a.sock");
  EXPECT_EQ(shardSocketPath("/tmp/a.sock", 0, 3), "/tmp/a.sock.0");
  EXPECT_EQ(shardSocketPath("/tmp/a.sock", 2, 3), "/tmp/a.sock.2");
}

TEST(HashRing, DoubleFailureRemapsBothAndOnlyBoth) {
  constexpr std::size_t kShards = 5;
  constexpr std::size_t kKeys = 8000;
  HashRing ring(kShards);
  std::vector<std::size_t> before(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) {
    before[i] = ring.route(i * 0x100000001b3ull);
  }
  ring.markDead(1);
  ring.markDead(3);
  // Re-marking an already-dead shard is an idempotent no-op.
  ring.markDead(1);
  EXPECT_EQ(ring.aliveCount(), kShards - 2);
  EXPECT_FALSE(ring.alive(1));
  EXPECT_FALSE(ring.alive(3));
  for (std::size_t i = 0; i < kKeys; ++i) {
    std::size_t now = ring.route(i * 0x100000001b3ull);
    if (before[i] == 1 || before[i] == 3) {
      EXPECT_NE(now, 1u);
      EXPECT_NE(now, 3u);
    } else {
      // Keys owned by neither dead shard never move, even with two holes
      // in the ring.
      EXPECT_EQ(now, before[i]) << "key index " << i;
    }
  }
}

TEST(HashRing, UnmarkRestoresOriginalOwnershipBitIdentically) {
  constexpr std::size_t kShards = 6;
  constexpr std::size_t kKeys = 8000;
  HashRing ring(kShards);
  std::vector<std::size_t> before(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) {
    before[i] = ring.route(i * 0x9e3779b97f4a7c15ull);
  }
  ring.markDead(0);
  ring.markDead(4);
  ring.markAlive(4);
  ring.markAlive(0);
  // Recovery from a double failure restores the exact original map —
  // every key, not just statistically.
  for (std::size_t i = 0; i < kKeys; ++i) {
    ASSERT_EQ(ring.route(i * 0x9e3779b97f4a7c15ull), before[i])
        << "key index " << i;
  }
}

TEST(HashRing, RouteExcludingSkipsTheOwner) {
  HashRing ring(4);
  for (std::uint64_t key = 0; key < 2048; ++key) {
    std::size_t owner = ring.route(key);
    std::size_t backup = ring.routeExcluding(key, owner);
    ASSERT_LT(backup, ring.shardCount());
    EXPECT_NE(backup, owner);
    // The hedge target is exactly where the key would land if its owner
    // died.
    ring.markDead(owner);
    EXPECT_EQ(ring.route(key), backup);
    ring.markAlive(owner);
  }
  HashRing solo(1);
  EXPECT_EQ(solo.routeExcluding(42, 0), solo.shardCount());
}

// ---------------------------------------------------------------------------
// Address parsing and shard addressing.

TEST(Address, ParsesTcpAndUnixForms) {
  Address tcp = parseAddress("127.0.0.1:7000");
  EXPECT_EQ(tcp.kind, Address::Kind::Tcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 7000);
  EXPECT_EQ(tcp.str(), "127.0.0.1:7000");

  Address bare = parseAddress(":9000");
  EXPECT_EQ(bare.kind, Address::Kind::Tcp);
  EXPECT_EQ(bare.host, "0.0.0.0");

  // Anything with a '/' or a non-numeric suffix is a unix path — every
  // historical --socket value keeps parsing as before.
  EXPECT_EQ(parseAddress("/tmp/d.sock").kind, Address::Kind::Unix);
  EXPECT_EQ(parseAddress("/tmp/d:1.sock/x").kind, Address::Kind::Unix);
  EXPECT_EQ(parseAddress("relative.sock").kind, Address::Kind::Unix);
  EXPECT_EQ(parseAddress("host:port").kind, Address::Kind::Unix);

  EXPECT_THROW(parseAddress("h:70000"), std::runtime_error);
}

TEST(Address, ShardAddressingMatchesSocketPathConvention) {
  Address base = Address::makeUnix("/tmp/d.sock");
  EXPECT_EQ(shardAddress(base, 0, 1).str(), "/tmp/d.sock");
  EXPECT_EQ(shardAddress(base, 2, 3).str(), "/tmp/d.sock.2");
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(shardAddress(base, k, 3).path, shardSocketPath("/tmp/d.sock", k, 3));
  }
  Address tcp = Address::makeTcp("10.0.0.1", 7000);
  EXPECT_EQ(shardAddress(tcp, 0, 4).port, 7000);
  EXPECT_EQ(shardAddress(tcp, 3, 4).port, 7003);
  EXPECT_EQ(shardAddress(tcp, 3, 4).host, "10.0.0.1");
  EXPECT_THROW(shardAddress(Address::makeTcp("h", 65535), 1, 2),
               std::runtime_error);
}

TEST(Address, SplitAddressListMixesTransports) {
  std::vector<Address> list =
      splitAddressList("/tmp/a.sock,127.0.0.1:7000,/tmp/b.sock");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].kind, Address::Kind::Unix);
  EXPECT_EQ(list[1].kind, Address::Kind::Tcp);
  EXPECT_EQ(list[2].path, "/tmp/b.sock");
  EXPECT_THROW(splitAddressList("a.sock,,b.sock"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// TCP listener + dialer: the same Conn framing over AF_INET.

TEST(Listener, TcpEchoRoundTripWithEphemeralPort) {
  EventLoop loop;
  std::vector<std::unique_ptr<Conn>> conns;
  auto listener = std::make_unique<Listener>(
      loop, Address::makeTcp("127.0.0.1", 0), 8, [&](int fd) {
        Conn::Handler handler;
        handler.on_frame = [](Conn& conn, std::uint64_t seq,
                              std::string&& frame) {
          conn.completeRequest(seq, "echo:" + frame);
        };
        handler.on_close = [](Conn&) {};
        conns.push_back(std::make_unique<Conn>(loop, fd, ConnOptions{},
                                               std::move(handler)));
      });
  std::uint16_t port = listener->boundPort();
  ASSERT_GT(port, 0);
  std::thread runner([&loop] { loop.run(); });

  {
    ShardConnection client(Address::makeTcp("127.0.0.1", port));
    client.sendLine("hello-tcp");
    EXPECT_EQ(client.readLine(), "echo:hello-tcp");
    client.sendLine("second");
    EXPECT_EQ(client.readLine(), "echo:second");
  }

  loop.post([&] {
    conns.clear();
    listener->close();
    loop.stop();
  });
  runner.join();
  listener.reset();
}

// ---------------------------------------------------------------------------
// Decorrelated-jitter backoff (satellite: replaces plain exponential).

TEST(DecorrelatedJitter, DeterministicPerSeedAndBounded) {
  DecorrelatedJitter a(50, 2000, 7), b(50, 2000, 7), c(50, 2000, 8);
  std::vector<std::uint64_t> seq_a, seq_c;
  std::uint64_t prev = 50;
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    std::uint64_t da = a.nextDelayMs();
    seq_a.push_back(da);
    EXPECT_EQ(da, b.nextDelayMs());  // same seed, same schedule
    // Decorrelated-jitter envelope: uniform in [base, min(cap, 3*prev)].
    EXPECT_GE(da, 50u);
    EXPECT_LE(da, std::min<std::uint64_t>(2000, prev * 3));
    prev = da;
    std::uint64_t dc = c.nextDelayMs();
    seq_c.push_back(dc);
    any_diff |= da != dc;
  }
  EXPECT_TRUE(any_diff);  // different seeds decorrelate

  // reset() forgets the ramp: the next draw is from the initial window.
  a.reset();
  EXPECT_LE(a.nextDelayMs(), 150u);
}

TEST(DecorrelatedJitter, RampsTowardCapAndStaysThere) {
  DecorrelatedJitter j(10, 500, 3);
  std::uint64_t max_seen = 0;
  for (int i = 0; i < 256; ++i) max_seen = std::max(max_seen, j.nextDelayMs());
  EXPECT_GT(max_seen, 250u);   // the ramp actually reaches large delays
  EXPECT_LE(max_seen, 500u);   // but never exceeds the cap
}

// ---------------------------------------------------------------------------
// Circuit breaker state machine (fake clock throughout).

TEST(CircuitBreaker, ClosedOpensOnFailureThenProbesAndCloses) {
  using State = CircuitBreaker::State;
  CircuitBreaker b(100, 1000, 42);
  auto t0 = std::chrono::steady_clock::time_point{};
  EXPECT_EQ(b.state(t0), State::Closed);

  b.recordFailure(t0);
  EXPECT_EQ(b.state(t0), State::Open);
  EXPECT_EQ(b.opens(), 1u);
  EXPECT_FALSE(b.allowProbe(t0));
  EXPECT_GT(b.msUntilProbe(t0), 0u);

  // The open window is jittered within [base, 3*base] on the first trip.
  auto t1 = t0 + std::chrono::milliseconds(301);
  EXPECT_EQ(b.state(t1), State::HalfOpen);
  EXPECT_TRUE(b.allowProbe(t1));
  EXPECT_FALSE(b.allowProbe(t1));  // exactly one probe per window

  b.recordSuccess();
  EXPECT_EQ(b.state(t1), State::Closed);
}

TEST(CircuitBreaker, FailedProbeReopensWithALongerWindow) {
  using State = CircuitBreaker::State;
  CircuitBreaker b(100, 10000, 9);
  auto t0 = std::chrono::steady_clock::time_point{};
  b.recordFailure(t0);
  std::uint64_t first_window = b.msUntilProbe(t0);

  auto t1 = t0 + std::chrono::milliseconds(first_window + 1);
  ASSERT_EQ(b.state(t1), State::HalfOpen);
  ASSERT_TRUE(b.allowProbe(t1));
  b.recordFailure(t1);
  EXPECT_EQ(b.state(t1), State::Open);
  EXPECT_EQ(b.opens(), 2u);
  // Windows ramp like the jitter schedule: eventually much longer than
  // the first.
  std::uint64_t max_window = b.msUntilProbe(t1);
  auto t = t1;
  for (int i = 0; i < 16; ++i) {
    t += std::chrono::milliseconds(b.msUntilProbe(t) + 1);
    ASSERT_TRUE(b.allowProbe(t));
    b.recordFailure(t);
    max_window = std::max(max_window, b.msUntilProbe(t));
  }
  EXPECT_GT(max_window, first_window);
  EXPECT_LE(max_window, 10000u);

  // A success anywhere resets the ramp.
  b.recordSuccess();
  b.recordFailure(t);
  EXPECT_LE(b.msUntilProbe(t), 300u);
}

}  // namespace
}  // namespace cuaf::net
