// Strong integer id wrappers used across the compiler libraries.
//
// Every table-indexed entity (symbols, scopes, CCFG nodes, outer-variable
// uses, ...) gets its own id type so that ids of different tables cannot be
// mixed up silently.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace cuaf {

/// CRTP-free strong id: `struct NodeId : Id<NodeId> {};`
template <typename Tag>
struct Id {
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

  value_type value = kInvalid;

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  [[nodiscard]] constexpr value_type index() const { return value; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;
};

struct SymbolTag;
struct ScopeTag;
struct VarTag;
struct ProcTag;
struct NodeTag;
struct TaskTag;
struct AccessTag;
struct FileTag;

using Symbol = Id<SymbolTag>;    ///< interned identifier string
using ScopeId = Id<ScopeTag>;    ///< lexical scope
using VarId = Id<VarTag>;        ///< declared variable
using ProcId = Id<ProcTag>;      ///< procedure
using NodeId = Id<NodeTag>;      ///< CCFG node
using TaskId = Id<TaskTag>;      ///< task strand in a CCFG
using AccessId = Id<AccessTag>;  ///< one outer-variable use site
using FileId = Id<FileTag>;      ///< source buffer

}  // namespace cuaf

namespace std {
template <typename Tag>
struct hash<cuaf::Id<Tag>> {
  size_t operator()(cuaf::Id<Tag> id) const noexcept {
    return std::hash<typename cuaf::Id<Tag>::value_type>{}(id.value);
  }
};
}  // namespace std
