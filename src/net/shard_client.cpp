#include "src/net/shard_client.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/support/hash.h"

namespace cuaf::net {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t msSince(Clock::time_point start, Clock::time_point now) {
  auto d = std::chrono::duration_cast<std::chrono::milliseconds>(now - start);
  return d.count() <= 0 ? 0 : static_cast<std::uint64_t>(d.count());
}

/// poll() one fd for POLLIN, EINTR-safe. timeout_ms capped to int range.
bool pollIn(int fd, std::uint64_t timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  for (;;) {
    int timeout = timeout_ms > 60'000 ? 60'000 : static_cast<int>(timeout_ms);
    int rc = ::poll(&p, 1, timeout);
    if (rc < 0 && errno == EINTR) continue;
    return rc > 0;
  }
}

}  // namespace

ShardConnection::ShardConnection(const Address& address)
    : fd_(dialAddress(address)) {}

ShardConnection::~ShardConnection() {
  if (fd_ >= 0) ::close(fd_);
}

void ShardConnection::sendLine(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::string_view rest = framed;
  while (!rest.empty()) {
    ssize_t n = ::send(fd_, rest.data(), rest.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send failed: ") +
                               std::strerror(errno));
    }
    rest.remove_prefix(static_cast<std::size_t>(n));
  }
}

bool ShardConnection::hasLine() const {
  return buffer_.find('\n') != std::string::npos;
}

void ShardConnection::fillOnce() {
  char buf[65536];
  for (;;) {
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) throw std::runtime_error("daemon closed the connection");
    buffer_.append(buf, static_cast<std::size_t>(n));
    return;
  }
}

std::string ShardConnection::readLine() {
  std::size_t nl;
  while ((nl = buffer_.find('\n')) == std::string::npos) fillOnce();
  std::string response = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);
  return response;
}

bool ShardConnection::waitReadable(std::uint64_t timeout_ms) {
  if (hasLine()) return true;
  Clock::time_point start = Clock::now();
  for (;;) {
    std::uint64_t spent = msSince(start, Clock::now());
    if (spent >= timeout_ms) return hasLine();
    if (!pollIn(fd_, timeout_ms - spent)) continue;  // re-check the budget
    fillOnce();  // poll said readable: one read() will not block
    if (hasLine()) return true;
  }
}

bool probeAddress(const Address& address, std::uint64_t timeout_ms) {
  // The connect itself is blocking but resolves immediately for unix and
  // localhost TCP sockets (the kernel completes the handshake even when
  // the listener process is stopped — which is exactly why the read below
  // is poll-bounded: a SIGSTOPped shard accepts but never answers).
  try {
    ShardConnection conn(address);
    conn.sendLine("{\"op\":\"ping\",\"id\":0}");
    if (!conn.waitReadable(timeout_ms)) return false;
    std::string response = conn.readLine();
    return response.find("\"status\":\"ok\"") != std::string::npos &&
           response.find("\"op\":\"ping\"") != std::string::npos;
  } catch (const std::exception&) {
    return false;
  }
}

ShardClient::ShardClient(std::vector<Address> shards,
                         ShardClientOptions options)
    : addresses_(std::move(shards)),
      options_(options),
      ring_(addresses_.empty() ? 1 : addresses_.size()),
      conns_(ring_.shardCount()),
      retry_jitter_(options.backoff_base_ms, options.backoff_cap_ms,
                    options.backoff_seed) {
  if (addresses_.empty()) {
    throw std::runtime_error("ShardClient needs at least one address");
  }
  breakers_.reserve(ring_.shardCount());
  for (std::size_t k = 0; k < ring_.shardCount(); ++k) {
    breakers_.emplace_back(
        options_.breaker_open_base_ms, options_.breaker_open_cap_ms,
        hashCombine(splitmix64(options_.backoff_seed), k));
  }
}

std::vector<Address> ShardClient::addressesFor(const std::string& base_addr,
                                               std::size_t shards) {
  Address base = parseAddress(base_addr);
  std::vector<Address> out;
  std::size_t n = shards == 0 ? 1 : shards;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    out.push_back(shardAddress(base, k, n));
  }
  return out;
}

bool ShardClient::responseOk(const std::string& response) {
  return response.find("\"status\":\"ok\"") != std::string::npos;
}

bool ShardClient::responseRetryable(const std::string& response) {
  return response.find("\"code\":\"overloaded\"") != std::string::npos ||
         response.find("\"code\":\"worker_crashed\"") != std::string::npos;
}

void ShardClient::refreshRing(TimePoint now) {
  for (std::size_t k = 0; k < breakers_.size(); ++k) {
    if (breakers_[k].state(now) == CircuitBreaker::State::Open) {
      ring_.markDead(k);
    } else {
      ring_.markAlive(k);
    }
  }
}

std::size_t ShardClient::route(std::uint64_t key) {
  refreshRing(Clock::now());
  if (ring_.aliveCount() == 0) {
    // Every breaker open: route on the full ring so callers that only
    // group (e.g. batch splitting) still get the canonical owner.
    for (std::size_t k = 0; k < ring_.shardCount(); ++k) ring_.markAlive(k);
    std::size_t shard = ring_.route(key);
    refreshRing(Clock::now());
    return shard;
  }
  return ring_.route(key);
}

std::vector<std::size_t> ShardClient::reachableShards() {
  refreshRing(Clock::now());
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < ring_.shardCount(); ++k) {
    if (ring_.alive(k)) out.push_back(k);
  }
  return out;
}

void ShardClient::ensureConn(std::size_t shard) {
  if (!conns_[shard]) {
    conns_[shard] = std::make_unique<ShardConnection>(addresses_[shard]);
  }
}

void ShardClient::dropConn(std::size_t shard) { conns_[shard].reset(); }

std::string ShardClient::attemptOnce(std::size_t shard,
                                     const std::string& request) {
  ensureConn(shard);
  ++counters_.requests;
  return conns_[shard]->roundTrip(request);
}

std::string ShardClient::issueOn(std::size_t shard,
                                 const std::string& request) {
  retry_jitter_.reset();
  for (unsigned attempt = 0;; ++attempt) {
    std::string response;
    try {
      response = attemptOnce(shard, request);
    } catch (const std::exception&) {
      // Dead socket: reconnect on the next attempt.
      dropConn(shard);
      if (attempt >= options_.retries) {
        breakers_[shard].recordFailure(Clock::now());
        ++counters_.breaker_opens;
        throw;
      }
      ++counters_.retries;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retry_jitter_.nextDelayMs()));
      continue;
    }
    if (attempt < options_.retries && !responseOk(response) &&
        responseRetryable(response)) {
      ++counters_.retries;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retry_jitter_.nextDelayMs()));
      continue;
    }
    breakers_[shard].recordSuccess();
    return response;
  }
}

std::string ShardClient::issueRouted(std::uint64_t key,
                                     const std::string& request) {
  TimePoint start = Clock::now();
  bool failed_over = false;
  for (;;) {
    TimePoint now = Clock::now();
    refreshRing(now);
    if (ring_.aliveCount() == 0) {
      // Every breaker open: wait for the soonest probe window if the
      // routing budget allows, otherwise give up.
      std::uint64_t soonest = UINT64_MAX;
      for (auto& b : breakers_) {
        std::uint64_t wait = b.msUntilProbe(now);
        if (wait < soonest) soonest = wait;
      }
      std::uint64_t spent = msSince(start, now);
      if (spent >= options_.route_budget_ms) {
        throw std::runtime_error(
            "all shard breakers open; routed request failed");
      }
      std::uint64_t budget_left = options_.route_budget_ms - spent;
      std::uint64_t sleep = soonest == UINT64_MAX ? 1 : soonest + 1;
      if (sleep > budget_left) sleep = budget_left;
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep));
      continue;
    }
    std::size_t shard = ring_.route(key);
    if (breakers_[shard].allowProbe(now)) ++counters_.probes;
    try {
      std::string response =
          options_.hedge_ms > 0 ? issueHedged(shard, key, request)
                                : issueOn(shard, request);
      if (failed_over) ++counters_.failovers;
      return response;
    } catch (const std::exception&) {
      // Breaker recorded the failure; the next refreshRing re-routes.
      failed_over = true;
      if (ring_.shardCount() == 1 && options_.route_budget_ms == 0) throw;
    }
  }
}

std::string ShardClient::issueHedged(std::size_t primary, std::uint64_t key,
                                     const std::string& request) {
  // Fast path: the primary answers within the hedge window.
  try {
    ensureConn(primary);
    ++counters_.requests;
    conns_[primary]->sendLine(request);
    if (conns_[primary]->waitReadable(options_.hedge_ms)) {
      std::string response = conns_[primary]->readLine();
      breakers_[primary].recordSuccess();
      return response;
    }
  } catch (const std::exception&) {
    dropConn(primary);
    breakers_[primary].recordFailure(Clock::now());
    ++counters_.breaker_opens;
    throw;
  }

  refreshRing(Clock::now());
  std::size_t backup = ring_.routeExcluding(key, primary);
  if (backup >= ring_.shardCount()) {
    // Nowhere to hedge: block on the primary like an unhedged request.
    try {
      std::string response = conns_[primary]->readLine();
      breakers_[primary].recordSuccess();
      return response;
    } catch (const std::exception&) {
      dropConn(primary);
      breakers_[primary].recordFailure(Clock::now());
      ++counters_.breaker_opens;
      throw;
    }
  }

  // Hedge: duplicate the request to the backup and race the two
  // connections. The loser's connection is dropped — it still owes us a
  // response line, and reusing it would desynchronize request/response
  // pairing. The duplicated work lands in the loser's content-addressed
  // cache, so nothing is double-counted into any response.
  ++counters_.hedges;
  try {
    ensureConn(backup);
    ++counters_.requests;
    conns_[backup]->sendLine(request);
    std::size_t winner = primary;
    for (;;) {
      if (conns_[primary]->hasLine()) {
        winner = primary;
        break;
      }
      if (conns_[backup]->hasLine()) {
        winner = backup;
        break;
      }
      pollfd fds[2] = {{conns_[primary]->fd(), POLLIN, 0},
                       {conns_[backup]->fd(), POLLIN, 0}};
      int rc = ::poll(fds, 2, 60'000);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("poll failed: ") +
                                 std::strerror(errno));
      }
      if (rc == 0) {
        throw std::runtime_error("hedged request timed out on both shards");
      }
      if (fds[0].revents != 0) conns_[primary]->fillOnce();
      if (fds[1].revents != 0 && !conns_[primary]->hasLine()) {
        conns_[backup]->fillOnce();
      }
    }
    std::string response = conns_[winner]->readLine();
    breakers_[winner].recordSuccess();
    std::size_t loser = winner == primary ? backup : primary;
    dropConn(loser);
    if (winner == backup) ++counters_.hedge_wins;
    return response;
  } catch (const std::exception&) {
    // Either side failing mid-race leaves unknown bytes in flight on both:
    // reset them. Blame the primary (it already blew the hedge window) so
    // routing moves on.
    dropConn(primary);
    dropConn(backup);
    breakers_[primary].recordFailure(Clock::now());
    ++counters_.breaker_opens;
    throw;
  }
}

}  // namespace cuaf::net
