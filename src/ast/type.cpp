#include "src/ast/type.h"

namespace cuaf {

std::string_view baseTypeName(BaseType b) {
  switch (b) {
    case BaseType::Int: return "int";
    case BaseType::Bool: return "bool";
    case BaseType::Real: return "real";
    case BaseType::String: return "string";
    case BaseType::Void: return "void";
  }
  return "?";
}

std::string typeName(const Type& t) {
  std::string out;
  switch (t.conc) {
    case ConcKind::None: break;
    case ConcKind::Sync: out += "sync "; break;
    case ConcKind::Single: out += "single "; break;
    case ConcKind::Atomic: out += "atomic "; break;
    case ConcKind::Barrier: return "barrier";
  }
  out += baseTypeName(t.base);
  return out;
}

}  // namespace cuaf
