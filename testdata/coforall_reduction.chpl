/* coforall extension: per-iteration tasks with an implicit join.
   Run with --unroll-loops to analyze statically. */
proc reduce() {
  var total: int = 0;
  coforall i in 1..4 with (ref total) {
    total += i;
  }
  writeln(total);
}
