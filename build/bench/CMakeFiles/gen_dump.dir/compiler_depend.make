# Empty compiler generated dependencies file for gen_dump.
# This may be replaced when dependencies are built.
