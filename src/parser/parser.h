// Recursive-descent parser for the mini-Chapel subset.
//
// Accepts both parenthesized and keyword statement forms, matching Chapel:
//   if (c) { } else { }        if c then s else s
//   while (c) { }              while c do s
//   begin { }                  begin with (ref x, in y) { }
//   sync { }                   sync begin { }
//   cobegin { s1 s2 }          for i in 1..n { }
#pragma once

#include <memory>

#include "src/ast/ast.h"
#include "src/lexer/lexer.h"
#include "src/support/interner.h"

namespace cuaf {

class Parser {
 public:
  Parser(const SourceManager& sm, FileId file, StringInterner& interner,
         DiagnosticEngine& diags);

  /// Parses a whole translation unit. On syntax errors, reports diagnostics
  /// and returns the successfully parsed prefix (check diags.hasErrors()).
  std::unique_ptr<Program> parseProgram();

 private:
  struct ParseError {};  // thrown to unwind to a recovery point

  // token stream
  const Token& cur() const { return cur_; }
  const Token& peekNext();
  void bump();
  bool at(TokKind k) const { return cur_.kind == k; }
  bool accept(TokKind k);
  void expect(TokKind k, const char* context);
  [[noreturn]] void fail(const char* message);

  Symbol internTok(const Token& t) { return interner_.intern(t.text); }

  // declarations
  std::unique_ptr<ProcDecl> parseProc(bool nested);
  std::unique_ptr<VarDeclStmt> parseConfigDecl();
  Param parseParam();
  Type parseType();

  // statements
  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseVarDecl(DeclQual qual, SourceLoc loc);
  StmtPtr parseBegin(SourceLoc loc);
  StmtPtr parseSync(SourceLoc loc);
  StmtPtr parseCobegin(SourceLoc loc);
  StmtPtr parseCoforall(SourceLoc loc);
  StmtPtr parseIf(SourceLoc loc);
  StmtPtr parseWhile(SourceLoc loc);
  StmtPtr parseFor(SourceLoc loc);
  StmtPtr parseReturn(SourceLoc loc);
  StmtPtr parseAssignOrExprStmt();
  std::vector<WithItem> parseWithClause();
  /// Body after begin/sync/if-then/...: a block or a single statement.
  StmtPtr parseControlledStmt();

  // expressions, precedence climbing
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseEquality();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  void synchronize();

  Lexer lexer_;
  StringInterner& interner_;
  DiagnosticEngine& diags_;
  Token cur_;
  Token next_;
  bool has_next_ = false;
  std::size_t tokens_consumed_ = 0;  ///< progress guarantee for recovery
};

/// Convenience: parse `source` registered under `name`.
std::unique_ptr<Program> parseString(SourceManager& sm, StringInterner& interner,
                                     DiagnosticEngine& diags,
                                     std::string name, std::string source);

}  // namespace cuaf
