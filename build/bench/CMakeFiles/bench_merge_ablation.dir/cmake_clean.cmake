file(REMOVE_RECURSE
  "CMakeFiles/bench_merge_ablation.dir/bench_merge_ablation.cpp.o"
  "CMakeFiles/bench_merge_ablation.dir/bench_merge_ablation.cpp.o.d"
  "bench_merge_ablation"
  "bench_merge_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merge_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
