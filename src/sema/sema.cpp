#include "src/sema/sema.h"

#include <cassert>
#include <string>

namespace cuaf {

namespace {
const std::vector<SemaModule::CallSite> kNoCallSites;

std::string symText(const StringInterner& in, Symbol s) {
  return std::string(in.text(s));
}
}  // namespace

ScopeId SemaModule::enclosingTaskScope(ScopeId s) const {
  while (s.valid()) {
    const ScopeInfo& info = scope(s);
    if (info.kind == ScopeKind::BeginTask || info.kind == ScopeKind::Cobegin) {
      return s;
    }
    s = info.parent;
  }
  return ScopeId{};
}

bool SemaModule::scopeContains(ScopeId outer, ScopeId inner) const {
  while (inner.valid()) {
    if (inner == outer) return true;
    inner = scope(inner).parent;
  }
  return false;
}

const std::vector<SemaModule::CallSite>& SemaModule::callSites(
    ProcId callee) const {
  auto it = call_sites_.find(callee);
  return it == call_sites_.end() ? kNoCallSites : it->second;
}

Sema::Sema(StringInterner& interner, DiagnosticEngine& diags)
    : interner_(interner), diags_(diags) {
  sym_writeln_ = interner_.intern("writeln");
  sym_write_ = interner_.intern("write");
}

std::unique_ptr<SemaModule> analyze(Program& program, StringInterner& interner,
                                    DiagnosticEngine& diags) {
  Sema sema(interner, diags);
  return sema.run(program);
}

ScopeId Sema::pushScope(ScopeKind kind, SourceLoc loc) {
  ScopeInfo info;
  info.id = ScopeId(static_cast<ScopeId::value_type>(module_->scopes_.size()));
  info.parent = scope_stack_.empty() ? ScopeId{} : scope_stack_.back().id;
  info.kind = kind;
  info.proc = currentProc();
  info.loc = loc;
  module_->scopes_.push_back(info);
  scope_stack_.push_back(LexicalScope{info.id, {}, {}});
  return info.id;
}

void Sema::popScope() { scope_stack_.pop_back(); }

ScopeId Sema::currentScope() const {
  return scope_stack_.empty() ? ScopeId{} : scope_stack_.back().id;
}

ProcId Sema::currentProc() const {
  return proc_stack_.empty() ? ProcId{} : proc_stack_.back();
}

VarId Sema::declareVar(Symbol name, Type type, SourceLoc loc, DeclQual qual,
                       bool is_param) {
  LexicalScope& top = scope_stack_.back();
  if (auto it = top.vars.find(name); it != top.vars.end()) {
    diags_.error(loc, "sema",
                 "redeclaration of '" + symText(interner_, name) + "'");
    return it->second;
  }
  VarInfo info;
  info.id = VarId(static_cast<VarId::value_type>(module_->vars_.size()));
  info.name = name;
  info.type = type;
  info.scope = top.id;
  info.loc = loc;
  info.qual = qual;
  info.is_param = is_param;
  module_->vars_.push_back(info);
  top.vars.emplace(name, info.id);
  return info.id;
}

std::optional<VarId> Sema::lookupVar(Symbol name) const {
  for (auto it = scope_stack_.rbegin(); it != scope_stack_.rend(); ++it) {
    auto v = it->vars.find(name);
    if (v != it->vars.end()) return v->second;
  }
  return std::nullopt;
}

std::optional<ProcId> Sema::lookupProc(Symbol name) const {
  for (auto it = scope_stack_.rbegin(); it != scope_stack_.rend(); ++it) {
    auto p = it->procs.find(name);
    if (p != it->procs.end()) return p->second;
  }
  return std::nullopt;
}

std::unique_ptr<SemaModule> Sema::run(Program& program) {
  auto module = std::make_unique<SemaModule>();
  module->interner_ = &interner_;
  module_ = module.get();

  pushScope(ScopeKind::Module, SourceLoc{});

  // Module-level config variables.
  for (auto& cfg : program.configs) {
    Type t = cfg->declared_type ? *cfg->declared_type
                                : (cfg->init ? inferType(*cfg->init)
                                             : Type{BaseType::Int, ConcKind::None});
    if (cfg->init) visitExpr(*cfg->init);
    cfg->resolved = declareVar(cfg->name, t, cfg->loc, cfg->qual, false);
    module_->config_vars_.push_back(cfg->resolved);
  }

  // Two passes over top-level procs so forward calls resolve.
  for (auto& proc : program.procs) {
    declareProcSignature(*proc, /*nested=*/false);
    module_->top_level_procs_.push_back(proc->id);
  }
  for (auto& proc : program.procs) {
    analyzeProcBody(*proc);
  }

  popScope();
  module_ = nullptr;
  return module;
}

void Sema::declareProcSignature(ProcDecl& proc, bool nested) {
  LexicalScope& top = scope_stack_.back();
  if (top.procs.contains(proc.name)) {
    diags_.error(proc.loc, "sema",
                 "redeclaration of procedure '" +
                     symText(interner_, proc.name) + "'");
  }
  ProcInfo info;
  info.id = ProcId(static_cast<ProcId::value_type>(module_->procs_.size()));
  info.name = proc.name;
  info.decl = &proc;
  info.lexical_parent = nested ? currentProc() : ProcId{};
  info.is_nested = nested;
  module_->procs_.push_back(info);
  proc.id = info.id;
  proc.is_nested = nested;
  top.procs.emplace(proc.name, info.id);
}

void Sema::analyzeProcBody(ProcDecl& proc) {
  proc_stack_.push_back(proc.id);
  ScopeId body_scope = pushScope(ScopeKind::Proc, proc.loc);
  module_->procs_[proc.id.index()].body_scope = body_scope;

  for (Param& p : proc.params) {
    DeclQual qual = (p.intent == ParamIntent::ConstIn ||
                     p.intent == ParamIntent::ConstRef)
                        ? DeclQual::Const
                        : DeclQual::Var;
    p.resolved = declareVar(p.name, p.type, p.loc, qual, /*is_param=*/true);
    VarInfo& vi = module_->vars_[p.resolved.index()];
    vi.is_param = true;
  }
  visitBlockInCurrentScope(*proc.body);
  popScope();
  proc_stack_.pop_back();
}

void Sema::visitBlockInCurrentScope(BlockStmt& block) {
  // First declare nested proc signatures so they are visible to all
  // statements of the block (Chapel nested procs are visible in their
  // enclosing scope, including before their textual declaration).
  for (auto& stmt : block.stmts) {
    if (auto* pd = stmt->as<ProcDeclStmt>()) {
      declareProcSignature(*pd->proc, /*nested=*/true);
    }
  }
  for (auto& stmt : block.stmts) {
    visitStmt(*stmt);
  }
}

void Sema::checkAssignable(VarId id, SourceLoc loc) {
  if (!id.valid()) return;
  const VarInfo& info = module_->var(id);
  if (info.qual == DeclQual::Const || info.qual == DeclQual::ConfigConst) {
    // sync/single variables declared const make no sense; only flag data vars
    if (!info.type.isSyncLike()) {
      diags_.error(loc, "sema",
                   "cannot assign to const variable '" +
                       symText(interner_, info.name) + "'");
    }
  }
}

void Sema::resolveWithItems(std::vector<WithItem>& items, const Stmt* owner) {
  std::vector<CaptureInfo> caps;
  for (WithItem& item : items) {
    auto outer = lookupVar(item.name);
    if (!outer) {
      diags_.error(item.loc, "sema",
                   "'with' clause names unknown variable '" +
                       symText(interner_, item.name) + "'");
      continue;
    }
    item.resolved = *outer;
    CaptureInfo cap;
    cap.intent = item.intent;
    cap.outer = *outer;
    cap.loc = item.loc;
    if (item.intent == TaskIntent::In || item.intent == TaskIntent::ConstIn) {
      // Create a task-local shadow copy in the task scope (current scope
      // must already be the task scope when this is called).
      Type t = module_->var(*outer).type;
      VarId shadow = declareVar(item.name, t, item.loc,
                                item.intent == TaskIntent::ConstIn
                                    ? DeclQual::Const
                                    : DeclQual::Var,
                                false);
      VarInfo& vi = module_->vars_[shadow.index()];
      vi.is_task_copy = true;
      vi.copied_from = *outer;
      cap.local = shadow;
    } else {
      cap.local = *outer;
    }
    caps.push_back(cap);
  }
  module_->captures_[owner] = std::move(caps);
}

void Sema::visitStmt(Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::VarDecl: {
      auto& s = static_cast<VarDeclStmt&>(stmt);
      if (s.init) visitExpr(*s.init);
      Type t = s.declared_type
                   ? *s.declared_type
                   : (s.init ? inferType(*s.init)
                             : Type{BaseType::Int, ConcKind::None});
      s.resolved = declareVar(s.name, t, s.loc, s.qual, false);
      if (t.isSyncLike() && s.init) {
        module_->vars_[s.resolved.index()].sync_init_full = true;
      }
      if (t.isBarrier() && s.init) {
        diags_.error(s.loc, "sema",
                     "barrier variables cannot take an initializer");
      }
      break;
    }
    case StmtKind::Assign: {
      auto& s = static_cast<AssignStmt&>(stmt);
      visitExpr(*s.value);
      auto id = lookupVar(s.target);
      if (!id) {
        diags_.error(s.loc, "sema",
                     "assignment to undeclared variable '" +
                         symText(interner_, s.target) + "'");
        break;
      }
      s.resolved = *id;
      checkAssignable(*id, s.loc);
      const VarInfo& info = module_->var(*id);
      if (info.type.isSyncLike() && s.op != AssignOp::Assign) {
        diags_.error(s.loc, "sema",
                     "compound assignment not allowed on sync/single variable");
      }
      if (info.type.isAtomic()) {
        diags_.error(s.loc, "sema",
                     "atomic variables are assigned via .write(), not '='");
      }
      if (info.type.isBarrier()) {
        diags_.error(s.loc, "sema", "cannot assign to a barrier variable");
      }
      break;
    }
    case StmtKind::Expr: {
      auto& s = static_cast<ExprStmt&>(stmt);
      visitExpr(*s.expr);
      break;
    }
    case StmtKind::Begin: {
      auto& s = static_cast<BeginStmt&>(stmt);
      ScopeId sc = pushScope(ScopeKind::BeginTask, s.loc);
      module_->stmt_scopes_[&stmt] = sc;
      resolveWithItems(s.with_items, &stmt);
      visitStmt(*s.body);
      popScope();
      break;
    }
    case StmtKind::SyncBlock: {
      auto& s = static_cast<SyncBlockStmt&>(stmt);
      ScopeId sc = pushScope(ScopeKind::SyncBlock, s.loc);
      module_->stmt_scopes_[&stmt] = sc;
      ++sync_block_depth_;
      visitStmt(*s.body);
      --sync_block_depth_;
      popScope();
      break;
    }
    case StmtKind::Cobegin: {
      auto& s = static_cast<CobeginStmt&>(stmt);
      ScopeId sc = pushScope(ScopeKind::Cobegin, s.loc);
      module_->stmt_scopes_[&stmt] = sc;
      resolveWithItems(s.with_items, &stmt);
      for (auto& sub : s.stmts) visitStmt(*sub);
      popScope();
      break;
    }
    case StmtKind::Coforall: {
      auto& s = static_cast<CoforallStmt&>(stmt);
      visitExpr(*s.lo);
      visitExpr(*s.hi);
      ScopeId loop_sc = pushScope(ScopeKind::Loop, s.loc);
      module_->stmt_scopes_[&stmt] = loop_sc;
      s.resolved_index = declareVar(s.index, Type{BaseType::Int, ConcKind::None},
                                    s.loc, DeclQual::Const, false);
      pushScope(ScopeKind::Cobegin, s.loc);
      resolveWithItems(s.with_items, &stmt);
      // The iteration index is captured by value into each task: declare a
      // task-local shadow and record the implicit capture.
      s.index_shadow = declareVar(s.index, Type{BaseType::Int, ConcKind::None},
                                  s.loc, DeclQual::Const, false);
      VarInfo& shadow = module_->vars_[s.index_shadow.index()];
      shadow.is_task_copy = true;
      shadow.copied_from = s.resolved_index;
      CaptureInfo idx_cap;
      idx_cap.intent = TaskIntent::In;
      idx_cap.outer = s.resolved_index;
      idx_cap.local = s.index_shadow;
      idx_cap.loc = s.loc;
      module_->captures_[&stmt].push_back(idx_cap);
      visitStmt(*s.body);
      popScope();
      popScope();
      break;
    }
    case StmtKind::If: {
      // Branch bodies are almost always blocks, which push their own scope;
      // a braceless branch body shares the enclosing scope.
      auto& s = static_cast<IfStmt&>(stmt);
      visitExpr(*s.cond);
      visitStmt(*s.then_body);
      if (s.else_body) visitStmt(*s.else_body);
      break;
    }
    case StmtKind::While: {
      auto& s = static_cast<WhileStmt&>(stmt);
      visitExpr(*s.cond);
      visitStmt(*s.body);
      break;
    }
    case StmtKind::For: {
      auto& s = static_cast<ForStmt&>(stmt);
      visitExpr(*s.lo);
      visitExpr(*s.hi);
      ScopeId sc = pushScope(ScopeKind::Loop, s.loc);
      module_->stmt_scopes_[&stmt] = sc;
      s.resolved_index = declareVar(s.index, Type{BaseType::Int, ConcKind::None},
                                    s.loc, DeclQual::Const, false);
      visitStmt(*s.body);
      popScope();
      break;
    }
    case StmtKind::Return: {
      auto& s = static_cast<ReturnStmt&>(stmt);
      if (s.value) visitExpr(*s.value);
      break;
    }
    case StmtKind::Block: {
      auto& s = static_cast<BlockStmt&>(stmt);
      ScopeId sc = pushScope(ScopeKind::Block, s.loc);
      module_->stmt_scopes_[&stmt] = sc;
      visitBlockInCurrentScope(s);
      popScope();
      break;
    }
    case StmtKind::ProcDecl: {
      auto& s = static_cast<ProcDeclStmt&>(stmt);
      // Signature was declared by the enclosing block scan; analyze body.
      analyzeProcBody(*s.proc);
      break;
    }
  }
}

void Sema::visitExpr(Expr& expr) {
  switch (expr.kind) {
    case ExprKind::IntLit:
    case ExprKind::RealLit:
    case ExprKind::BoolLit:
    case ExprKind::StringLit:
      break;
    case ExprKind::Ident: {
      auto& e = static_cast<IdentExpr&>(expr);
      auto id = lookupVar(e.name);
      if (!id) {
        diags_.error(e.loc, "sema",
                     "use of undeclared identifier '" +
                         symText(interner_, e.name) + "'");
        break;
      }
      e.resolved = *id;
      break;
    }
    case ExprKind::Binary: {
      auto& e = static_cast<BinaryExpr&>(expr);
      visitExpr(*e.lhs);
      visitExpr(*e.rhs);
      break;
    }
    case ExprKind::Unary: {
      auto& e = static_cast<UnaryExpr&>(expr);
      visitExpr(*e.operand);
      break;
    }
    case ExprKind::PostIncDec: {
      auto& e = static_cast<PostIncDecExpr&>(expr);
      auto id = lookupVar(e.name);
      if (!id) {
        diags_.error(e.loc, "sema",
                     "use of undeclared identifier '" +
                         symText(interner_, e.name) + "'");
        break;
      }
      e.resolved = *id;
      checkAssignable(*id, e.loc);
      break;
    }
    case ExprKind::Call: {
      auto& e = static_cast<CallExpr&>(expr);
      for (auto& arg : e.args) visitExpr(*arg);
      if (e.callee == sym_writeln_ || e.callee == sym_write_) {
        e.is_builtin = true;
        break;
      }
      auto proc = lookupProc(e.callee);
      if (!proc) {
        diags_.error(e.loc, "sema",
                     "call to unknown procedure '" +
                         symText(interner_, e.callee) + "'");
        break;
      }
      e.resolved_proc = *proc;
      const ProcInfo& pi = module_->proc(*proc);
      if (pi.decl->params.size() != e.args.size()) {
        diags_.error(e.loc, "sema",
                     "wrong number of arguments to '" +
                         symText(interner_, e.callee) + "'");
      } else {
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          const Param& p = pi.decl->params[i];
          bool by_ref = p.intent == ParamIntent::Ref ||
                        p.intent == ParamIntent::ConstRef;
          if (by_ref && e.args[i]->kind != ExprKind::Ident) {
            diags_.error(e.args[i]->loc, "sema",
                         "argument to 'ref' parameter must be a variable");
          }
        }
      }
      module_->call_sites_[*proc].push_back(SemaModule::CallSite{
          currentProc(), e.loc, sync_block_depth_ > 0});
      break;
    }
    case ExprKind::MethodCall: {
      auto& e = static_cast<MethodCallExpr&>(expr);
      for (auto& arg : e.args) visitExpr(*arg);
      auto id = lookupVar(e.receiver);
      if (!id) {
        diags_.error(e.loc, "sema",
                     "use of undeclared identifier '" +
                         symText(interner_, e.receiver) + "'");
        break;
      }
      e.resolved_receiver = *id;
      const VarInfo& info = module_->var(*id);
      std::string_view m = interner_.text(e.method);
      if (info.type.isAtomic()) {
        if (m != "read" && m != "write" && m != "waitFor" && m != "fetchAdd" &&
            m != "add" && m != "sub" && m != "exchange") {
          diags_.error(e.loc, "sema",
                       "unknown atomic method '" + std::string(m) + "'");
        }
      } else if (info.type.conc == ConcKind::Sync) {
        if (m != "readFE" && m != "writeEF" && m != "reset" && m != "isFull") {
          diags_.error(e.loc, "sema",
                       "unknown sync method '" + std::string(m) + "'");
        }
      } else if (info.type.conc == ConcKind::Single) {
        if (m != "readFF" && m != "writeEF" && m != "isFull") {
          diags_.error(e.loc, "sema",
                       "unknown single method '" + std::string(m) + "'");
        }
      } else if (info.type.conc == ConcKind::Barrier) {
        if (m != "wait") {
          diags_.error(e.loc, "sema",
                       "unknown barrier method '" + std::string(m) + "'");
        }
      } else {
        diags_.error(e.loc, "sema",
                     "method call on non-sync, non-atomic variable '" +
                         symText(interner_, e.receiver) + "'");
      }
      break;
    }
  }
}

Type Sema::inferType(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::IntLit: return Type{BaseType::Int, ConcKind::None};
    case ExprKind::RealLit: return Type{BaseType::Real, ConcKind::None};
    case ExprKind::BoolLit: return Type{BaseType::Bool, ConcKind::None};
    case ExprKind::StringLit: return Type{BaseType::String, ConcKind::None};
    case ExprKind::Ident: {
      const auto& e = static_cast<const IdentExpr&>(expr);
      if (auto id = lookupVar(e.name)) {
        Type t = module_->var(*id).type;
        // Reading a sync/single/atomic variable yields its base type.
        t.conc = ConcKind::None;
        return t;
      }
      return Type{BaseType::Int, ConcKind::None};
    }
    case ExprKind::Binary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      switch (e.op) {
        case BinaryOp::Eq:
        case BinaryOp::Ne:
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge:
        case BinaryOp::And:
        case BinaryOp::Or:
          return Type{BaseType::Bool, ConcKind::None};
        default: {
          Type lt = inferType(*e.lhs);
          Type rt = inferType(*e.rhs);
          if (lt.base == BaseType::Real || rt.base == BaseType::Real) {
            return Type{BaseType::Real, ConcKind::None};
          }
          if (lt.base == BaseType::String || rt.base == BaseType::String) {
            return Type{BaseType::String, ConcKind::None};
          }
          return Type{BaseType::Int, ConcKind::None};
        }
      }
    }
    case ExprKind::Unary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      return e.op == UnaryOp::Not ? Type{BaseType::Bool, ConcKind::None}
                                  : inferType(*e.operand);
    }
    case ExprKind::PostIncDec:
      return Type{BaseType::Int, ConcKind::None};
    case ExprKind::Call: {
      const auto& e = static_cast<const CallExpr&>(expr);
      if (auto proc = lookupProc(e.callee)) {
        return module_->proc(*proc).decl->return_type;
      }
      return Type{BaseType::Void, ConcKind::None};
    }
    case ExprKind::MethodCall: {
      const auto& e = static_cast<const MethodCallExpr&>(expr);
      if (auto id = lookupVar(e.receiver)) {
        Type t = module_->var(*id).type;
        std::string_view m = interner_.text(e.method);
        if (m == "isFull") return Type{BaseType::Bool, ConcKind::None};
        t.conc = ConcKind::None;
        return t;
      }
      return Type{BaseType::Int, ConcKind::None};
    }
  }
  return Type{BaseType::Int, ConcKind::None};
}

}  // namespace cuaf
