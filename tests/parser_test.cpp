#include <gtest/gtest.h>

#include "src/ast/printer.h"
#include "tests/test_util.h"

namespace cuaf {
namespace {

using test::Fixture;

TEST(Parser, EmptyProc) {
  auto f = Fixture::parse("proc p() { }");
  EXPECT_FALSE(f.diags.hasErrors());
  ASSERT_EQ(f.program->procs.size(), 1u);
  EXPECT_TRUE(f.program->procs[0]->params.empty());
  EXPECT_TRUE(f.program->procs[0]->body->stmts.empty());
}

TEST(Parser, ProcWithParams) {
  auto f = Fixture::parse("proc p(ref x: int, in y: bool, z: real) { }");
  ASSERT_FALSE(f.diags.hasErrors());
  const auto& params = f.program->procs[0]->params;
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0].intent, ParamIntent::Ref);
  EXPECT_EQ(params[1].intent, ParamIntent::In);
  EXPECT_EQ(params[2].intent, ParamIntent::Default);
  EXPECT_EQ(params[2].type.base, BaseType::Real);
}

TEST(Parser, VarDeclForms) {
  auto f = Fixture::parse(R"(proc p() {
    var a: int;
    var b = 3;
    var c: sync bool;
    var d: single int = 1;
    var e: atomic int;
    const k = 10;
  })");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto& stmts = f.program->procs[0]->body->stmts;
  ASSERT_EQ(stmts.size(), 6u);
  const auto* c = stmts[2]->as<VarDeclStmt>();
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->declared_type->conc, ConcKind::Sync);
  const auto* d = stmts[3]->as<VarDeclStmt>();
  EXPECT_EQ(d->declared_type->conc, ConcKind::Single);
  EXPECT_NE(d->init, nullptr);
  const auto* k = stmts[5]->as<VarDeclStmt>();
  EXPECT_EQ(k->qual, DeclQual::Const);
}

TEST(Parser, VarDeclWithoutTypeOrInitIsError) {
  auto f = Fixture::parse("proc p() { var a; }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Parser, ConfigConstTopLevel) {
  auto f = Fixture::parse("config const flag = true;\nproc p() { }");
  ASSERT_FALSE(f.diags.hasErrors());
  ASSERT_EQ(f.program->configs.size(), 1u);
  EXPECT_EQ(f.program->configs[0]->qual, DeclQual::ConfigConst);
}

TEST(Parser, BeginWithIntents) {
  auto f = Fixture::parse(R"(proc p() {
    var x = 1;
    var y = 2;
    begin with (ref x, in y, const in x, const ref y) { writeln(x); }
  })");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto* begin = f.program->procs[0]->body->stmts[2]->as<BeginStmt>();
  ASSERT_NE(begin, nullptr);
  ASSERT_EQ(begin->with_items.size(), 4u);
  EXPECT_EQ(begin->with_items[0].intent, TaskIntent::Ref);
  EXPECT_EQ(begin->with_items[1].intent, TaskIntent::In);
  EXPECT_EQ(begin->with_items[2].intent, TaskIntent::ConstIn);
  EXPECT_EQ(begin->with_items[3].intent, TaskIntent::ConstRef);
}

TEST(Parser, BeginWithoutWith) {
  auto f = Fixture::parse("proc p() { begin { writeln(1); } }");
  ASSERT_FALSE(f.diags.hasErrors());
  EXPECT_EQ(f.program->procs[0]->body->stmts[0]->kind, StmtKind::Begin);
}

TEST(Parser, BeginSingleStatement) {
  auto f = Fixture::parse("proc p() { var x = 1; begin writeln(x); }");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto* begin = f.program->procs[0]->body->stmts[1]->as<BeginStmt>();
  ASSERT_NE(begin, nullptr);
  EXPECT_EQ(begin->body->kind, StmtKind::Expr);
}

TEST(Parser, SyncBlockAndSyncType) {
  auto f = Fixture::parse(R"(proc p() {
    var d$: sync bool;
    sync { begin { writeln(1); } }
    sync begin { writeln(2); }
  })");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto& stmts = f.program->procs[0]->body->stmts;
  EXPECT_EQ(stmts[1]->kind, StmtKind::SyncBlock);
  EXPECT_EQ(stmts[2]->kind, StmtKind::SyncBlock);
}

TEST(Parser, IfForms) {
  auto f = Fixture::parse(R"(proc p() {
    var x = 1;
    if (x > 0) { x = 1; } else { x = 2; }
    if x > 0 then x = 3; else x = 4;
    if (x == 1) x = 5;
  })");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto& stmts = f.program->procs[0]->body->stmts;
  EXPECT_EQ(stmts[1]->kind, StmtKind::If);
  const auto* second = stmts[2]->as<IfStmt>();
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second->else_body, nullptr);
  const auto* third = stmts[3]->as<IfStmt>();
  EXPECT_EQ(third->else_body, nullptr);
}

TEST(Parser, WhileForms) {
  auto f = Fixture::parse(R"(proc p() {
    var x = 10;
    while (x > 0) { x -= 1; }
    while x > 0 do x -= 1;
  })");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
}

TEST(Parser, ForLoop) {
  auto f = Fixture::parse("proc p() { var s = 0; for i in 1..10 { s += i; } }");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto* loop = f.program->procs[0]->body->stmts[1]->as<ForStmt>();
  ASSERT_NE(loop, nullptr);
  EXPECT_NE(loop->lo, nullptr);
  EXPECT_NE(loop->hi, nullptr);
}

TEST(Parser, Cobegin) {
  auto f = Fixture::parse(R"(proc p() {
    var x = 1;
    cobegin with (ref x) {
      x += 1;
      writeln(x);
    }
  })");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto* co = f.program->procs[0]->body->stmts[1]->as<CobeginStmt>();
  ASSERT_NE(co, nullptr);
  EXPECT_EQ(co->stmts.size(), 2u);
  EXPECT_EQ(co->with_items.size(), 1u);
}

TEST(Parser, NestedProc) {
  auto f = Fixture::parse(R"(proc outer() {
    var x = 1;
    proc inner() { writeln(x); }
    inner();
  })");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto* nested = f.program->procs[0]->body->stmts[1]->as<ProcDeclStmt>();
  ASSERT_NE(nested, nullptr);
  EXPECT_TRUE(nested->proc->is_nested);
}

TEST(Parser, ExpressionPrecedence) {
  auto f = Fixture::parse("proc p() { var x = 1 + 2 * 3 == 7 && true; }");
  ASSERT_FALSE(f.diags.hasErrors());
  StringInterner& in = f.interner;
  AstPrinter printer(in);
  const auto* decl = f.program->procs[0]->body->stmts[0]->as<VarDeclStmt>();
  EXPECT_EQ(printer.print(*decl->init), "(((1 + (2 * 3)) == 7) && true)");
}

TEST(Parser, UnaryAndParens) {
  auto f = Fixture::parse("proc p() { var x = -(1 + 2); var y = !true; }");
  ASSERT_FALSE(f.diags.hasErrors());
  AstPrinter printer(f.interner);
  const auto* x = f.program->procs[0]->body->stmts[0]->as<VarDeclStmt>();
  EXPECT_EQ(printer.print(*x->init), "-(1 + 2)");
}

TEST(Parser, PostIncrement) {
  auto f = Fixture::parse("proc p() { var x = 1; writeln(x++); x--; }");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
}

TEST(Parser, MethodCall) {
  auto f = Fixture::parse(
      "proc p() { var a: atomic int; a.write(3); a.waitFor(3); }");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto* s = f.program->procs[0]->body->stmts[1]->as<ExprStmt>();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->expr->kind, ExprKind::MethodCall);
}

TEST(Parser, BareSyncReadStatement) {
  auto f = Fixture::parse("proc p() { var d$: sync bool; d$; }");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto* s = f.program->procs[0]->body->stmts[1]->as<ExprStmt>();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->expr->kind, ExprKind::Ident);
}

TEST(Parser, CompoundAssignOps) {
  auto f = Fixture::parse("proc p() { var x = 1; x += 2; x -= 3; x *= 4; }");
  ASSERT_FALSE(f.diags.hasErrors());
  const auto& stmts = f.program->procs[0]->body->stmts;
  EXPECT_EQ(stmts[1]->as<AssignStmt>()->op, AssignOp::AddAssign);
  EXPECT_EQ(stmts[2]->as<AssignStmt>()->op, AssignOp::SubAssign);
  EXPECT_EQ(stmts[3]->as<AssignStmt>()->op, AssignOp::MulAssign);
}

TEST(Parser, ReturnForms) {
  auto f = Fixture::parse(
      "proc p(): int { return 3; }\nproc q() { return; }");
  ASSERT_FALSE(f.diags.hasErrors());
}

TEST(Parser, SyntaxErrorRecoversAtStatement) {
  auto f = Fixture::parse(R"(proc p() {
    var x = ;
    var y = 2;
  })");
  EXPECT_TRUE(f.diags.hasErrors());
  // Recovery: the second declaration still parses.
  bool found_y = false;
  for (const auto& s : f.program->procs[0]->body->stmts) {
    if (const auto* d = s->as<VarDeclStmt>()) {
      if (f.interner.text(d->name) == "y") found_y = true;
    }
  }
  EXPECT_TRUE(found_y);
}

TEST(Parser, TopLevelGarbageReported) {
  auto f = Fixture::parse("banana;");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Parser, RoundTripFig1ShapePreserved) {
  const char* src = R"(proc outerVarUse() {
  var x: int = 10;
  var doneA$: sync bool;
  begin with (ref x) {
    writeln(x++);
    var doneB$: sync bool;
    begin with (ref x) {
      writeln(x);
      doneB$ = true;
    }
    writeln(x);
    doneA$ = true;
    doneB$;
  }
  doneA$;
  begin with (in x) {
    writeln(x);
  }
}
)";
  auto f = Fixture::parse(src);
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  AstPrinter printer(f.interner);
  std::string printed = printer.print(*f.program);
  // Re-parse the printed output: it must be stable (idempotent shape).
  auto f2 = Fixture::parse(printed);
  ASSERT_FALSE(f2.diags.hasErrors()) << printed;
  AstPrinter printer2(f2.interner);
  EXPECT_EQ(printer2.print(*f2.program), printed);
}

TEST(Parser, CallExpressions) {
  auto f = Fixture::parse(R"(proc add(a: int, b: int): int { return a + b; }
proc p() { var x = add(1, add(2, 3)); })");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
}

TEST(Parser, StringLiteralValueUnquoted) {
  auto f = Fixture::parse("proc p() { writeln(\"hi there\"); }");
  ASSERT_FALSE(f.diags.hasErrors());
  const auto* s = f.program->procs[0]->body->stmts[0]->as<ExprStmt>();
  const auto* call = s->expr->as<CallExpr>();
  ASSERT_NE(call, nullptr);
  const auto* lit = call->args[0]->as<StringLitExpr>();
  ASSERT_NE(lit, nullptr);
  EXPECT_EQ(lit->value, "hi there");
}

}  // namespace
}  // namespace cuaf
