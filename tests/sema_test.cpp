#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cuaf {
namespace {

using test::Fixture;

TEST(Sema, ResolvesLocalVariable) {
  auto f = Fixture::analyze("proc p() { var x = 1; writeln(x); }");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  EXPECT_GE(f.sema->varCount(), 1u);
}

TEST(Sema, UndeclaredVariableIsError) {
  auto f = Fixture::analyze("proc p() { writeln(nope); }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Sema, RedeclarationInSameScopeIsError) {
  auto f = Fixture::analyze("proc p() { var x = 1; var x = 2; }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Sema, ShadowingInInnerScopeIsAllowed) {
  auto f = Fixture::analyze("proc p() { var x = 1; { var x = 2; writeln(x); } }");
  EXPECT_FALSE(f.diags.hasErrors()) << f.diagText();
}

TEST(Sema, AssignToConstIsError) {
  auto f = Fixture::analyze("proc p() { const k = 1; k = 2; }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Sema, AssignToConfigConstIsError) {
  auto f = Fixture::analyze("config const n = 1;\nproc p() { n = 2; }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Sema, AssignToUndeclaredIsError) {
  auto f = Fixture::analyze("proc p() { ghost = 1; }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Sema, WithClauseUnknownVariableIsError) {
  auto f = Fixture::analyze("proc p() { begin with (ref zzz) { } }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Sema, WithInIntentCreatesTaskCopy) {
  auto f = Fixture::analyze(
      "proc p() { var x = 1; begin with (in x) { writeln(x); } }");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto* begin = f.program->procs[0]->body->stmts[1].get();
  const auto* caps = f.sema->captures(begin);
  ASSERT_NE(caps, nullptr);
  ASSERT_EQ(caps->size(), 1u);
  EXPECT_NE((*caps)[0].local, (*caps)[0].outer);
  EXPECT_TRUE(f.sema->var((*caps)[0].local).is_task_copy);
  EXPECT_EQ(f.sema->var((*caps)[0].local).copied_from, (*caps)[0].outer);
}

TEST(Sema, WithRefIntentSharesVariable) {
  auto f = Fixture::analyze(
      "proc p() { var x = 1; begin with (ref x) { writeln(x); } }");
  ASSERT_FALSE(f.diags.hasErrors());
  const auto* begin = f.program->procs[0]->body->stmts[1].get();
  const auto* caps = f.sema->captures(begin);
  ASSERT_NE(caps, nullptr);
  EXPECT_EQ((*caps)[0].local, (*caps)[0].outer);
}

TEST(Sema, BeginTaskScopeRecorded) {
  auto f = Fixture::analyze(
      "proc p() { var x = 1; begin with (ref x) { writeln(x); } }");
  ASSERT_FALSE(f.diags.hasErrors());
  const auto* begin = f.program->procs[0]->body->stmts[1].get();
  ScopeId sc = f.sema->scopeOf(begin);
  ASSERT_TRUE(sc.valid());
  EXPECT_EQ(f.sema->scope(sc).kind, ScopeKind::BeginTask);
}

TEST(Sema, EnclosingTaskScopeWalksUp) {
  auto f = Fixture::analyze(R"(proc p() {
    var x = 1;
    begin with (ref x) {
      { writeln(x); }
    }
  })");
  ASSERT_FALSE(f.diags.hasErrors()) << f.diagText();
  const auto* begin = f.program->procs[0]->body->stmts[1]->as<BeginStmt>();
  const auto* inner_block = begin->body->as<BlockStmt>()->stmts[0].get();
  ScopeId inner = f.sema->scopeOf(inner_block);
  ASSERT_TRUE(inner.valid());
  ScopeId task = f.sema->enclosingTaskScope(inner);
  ASSERT_TRUE(task.valid());
  EXPECT_EQ(f.sema->scope(task).kind, ScopeKind::BeginTask);
}

TEST(Sema, NestedProcSeesEnclosingVars) {
  auto f = Fixture::analyze(R"(proc p() {
    var x = 1;
    proc inner() { writeln(x); }
    inner();
  })");
  EXPECT_FALSE(f.diags.hasErrors()) << f.diagText();
}

TEST(Sema, NestedProcVisibleBeforeTextualDecl) {
  auto f = Fixture::analyze(R"(proc p() {
    helper();
    proc helper() { writeln(1); }
  })");
  EXPECT_FALSE(f.diags.hasErrors()) << f.diagText();
}

TEST(Sema, UnknownProcIsError) {
  auto f = Fixture::analyze("proc p() { missing(); }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Sema, WrongArgCountIsError) {
  auto f = Fixture::analyze(
      "proc f(a: int) { }\nproc p() { f(1, 2); }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Sema, RefParamNeedsVariableArgument) {
  auto f = Fixture::analyze(
      "proc f(ref a: int) { a = 1; }\nproc p() { f(3); }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Sema, RefParamWithVariableOk) {
  auto f = Fixture::analyze(
      "proc f(ref a: int) { a = 1; }\nproc p() { var x = 0; f(x); }");
  EXPECT_FALSE(f.diags.hasErrors()) << f.diagText();
}

TEST(Sema, ForwardCallBetweenTopLevelProcs) {
  auto f = Fixture::analyze("proc p() { q(); }\nproc q() { }");
  EXPECT_FALSE(f.diags.hasErrors()) << f.diagText();
}

TEST(Sema, CallSitesRecordSyncBlockEnclosure) {
  auto f = Fixture::analyze(R"(proc callee() { }
proc a() { sync { callee(); } }
proc b() { callee(); })");
  ASSERT_FALSE(f.diags.hasErrors());
  ProcId callee = f.program->procs[0]->id;
  const auto& sites = f.sema->callSites(callee);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_TRUE(sites[0].in_sync_block);
  EXPECT_FALSE(sites[1].in_sync_block);
}

TEST(Sema, SyncMethodValidation) {
  auto f = Fixture::analyze(
      "proc p() { var d$: sync bool; d$.readFE(); d$.writeEF(true); }");
  EXPECT_FALSE(f.diags.hasErrors()) << f.diagText();
  auto g = Fixture::analyze("proc p() { var d$: sync bool; d$.bogus(); }");
  EXPECT_TRUE(g.diags.hasErrors());
}

TEST(Sema, SingleMethodValidation) {
  auto f = Fixture::analyze(
      "proc p() { var s$: single bool; s$.readFF(); }");
  EXPECT_FALSE(f.diags.hasErrors()) << f.diagText();
  auto g = Fixture::analyze("proc p() { var s$: single bool; s$.readFE(); }");
  EXPECT_TRUE(g.diags.hasErrors());
}

TEST(Sema, AtomicMethodValidation) {
  auto f = Fixture::analyze(
      "proc p() { var a: atomic int; a.add(1); a.waitFor(1); a.read(); }");
  EXPECT_FALSE(f.diags.hasErrors()) << f.diagText();
  auto g = Fixture::analyze("proc p() { var a: atomic int; a.frobnicate(); }");
  EXPECT_TRUE(g.diags.hasErrors());
}

TEST(Sema, MethodOnPlainVarIsError) {
  auto f = Fixture::analyze("proc p() { var x = 1; x.read(); }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Sema, AtomicPlainAssignIsError) {
  auto f = Fixture::analyze("proc p() { var a: atomic int; a = 3; }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Sema, CompoundAssignOnSyncVarIsError) {
  auto f = Fixture::analyze("proc p() { var d$: sync bool; d$ += true; }");
  EXPECT_TRUE(f.diags.hasErrors());
}

TEST(Sema, SyncInitRecordedAsFull) {
  auto f = Fixture::analyze(
      "proc p() { var a$: sync bool = true; var b$: sync bool; }");
  ASSERT_FALSE(f.diags.hasErrors());
  const auto* a = f.program->procs[0]->body->stmts[0]->as<VarDeclStmt>();
  const auto* b = f.program->procs[0]->body->stmts[1]->as<VarDeclStmt>();
  EXPECT_TRUE(f.sema->var(a->resolved).sync_init_full);
  EXPECT_FALSE(f.sema->var(b->resolved).sync_init_full);
}

TEST(Sema, TypeInferenceFromInit) {
  auto f = Fixture::analyze(R"(proc p() {
    var i = 3;
    var r = 2.5;
    var b = true;
    var s = "hey";
    var c = 1 < 2;
  })");
  ASSERT_FALSE(f.diags.hasErrors());
  auto type_of = [&](std::size_t idx) {
    const auto* d = f.program->procs[0]->body->stmts[idx]->as<VarDeclStmt>();
    return f.sema->var(d->resolved).type.base;
  };
  EXPECT_EQ(type_of(0), BaseType::Int);
  EXPECT_EQ(type_of(1), BaseType::Real);
  EXPECT_EQ(type_of(2), BaseType::Bool);
  EXPECT_EQ(type_of(3), BaseType::String);
  EXPECT_EQ(type_of(4), BaseType::Bool);
}

TEST(Sema, ConfigVarsRegistered) {
  auto f = Fixture::analyze(
      "config const flag = true;\nconfig const n = 5;\nproc p() { }");
  ASSERT_FALSE(f.diags.hasErrors());
  EXPECT_EQ(f.sema->configVars().size(), 2u);
}

TEST(Sema, ScopeContains) {
  auto f = Fixture::analyze("proc p() { var x = 1; { writeln(x); } }");
  ASSERT_FALSE(f.diags.hasErrors());
  const auto* inner = f.program->procs[0]->body->stmts[1].get();
  ScopeId inner_scope = f.sema->scopeOf(inner);
  ScopeId proc_scope = f.sema->proc(f.program->procs[0]->id).body_scope;
  EXPECT_TRUE(f.sema->scopeContains(proc_scope, inner_scope));
  EXPECT_FALSE(f.sema->scopeContains(inner_scope, proc_scope));
}

TEST(Sema, ForLoopIndexIsConst) {
  auto f = Fixture::analyze("proc p() { for i in 1..3 { i = 5; } }");
  EXPECT_TRUE(f.diags.hasErrors());
}

}  // namespace
}  // namespace cuaf
