#include "src/service/supervisor.h"

#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <thread>

#include "src/service/worker.h"

namespace cuaf::service {

namespace {

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

std::string describeStatus(int status) {
  if (WIFSIGNALED(status)) {
    int sig = WTERMSIG(status);
    const char* name = strsignal(sig);
    return "signal " + std::to_string(sig) + " (" +
           (name != nullptr ? name : "?") + ")";
  }
  if (WIFEXITED(status)) {
    return "exit status " + std::to_string(WEXITSTATUS(status));
  }
  return "wait status " + std::to_string(status);
}

}  // namespace

Supervisor::Supervisor(const SupervisorOptions& options) : options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  std::lock_guard<std::mutex> lock(mutex_);
  workers_.resize(options_.workers);
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
    (void)spawnLocked(slot, /*is_restart=*/false);
  }
}

Supervisor::~Supervisor() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Worker& w : workers_) destroyLocked(w);
}

bool Supervisor::spawnLocked(std::size_t slot, bool is_restart) {
  Worker& w = workers_[slot];
  int to_child[2];
  int from_child[2];
  if (::pipe(to_child) != 0) return false;
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    return false;
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    return false;
  }
  if (pid == 0) {
    // Child. Drop every other worker's inherited pipe ends — if this child
    // kept a sibling's write end open, the parent would never see EOF when
    // that sibling dies. Then become the worker; _exit() so the parent's
    // stdio buffers are not flushed a second time.
    for (const Worker& other : workers_) {
      if (other.to_child >= 0) ::close(other.to_child);
      if (other.from_child >= 0) ::close(other.from_child);
    }
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::_exit(workerMain(to_child[0], from_child[1]));
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  w.pid = pid;
  w.to_child = to_child[1];
  w.from_child = from_child[0];
  counters_.forks += 1;
  if (is_restart) counters_.restarts += 1;
  return true;
}

void Supervisor::destroyLocked(Worker& w) {
  if (w.pid > 0) {
    ::kill(w.pid, SIGKILL);
    int status = 0;
    (void)::waitpid(w.pid, &status, 0);
  }
  if (w.to_child >= 0) ::close(w.to_child);
  if (w.from_child >= 0) ::close(w.from_child);
  w.pid = -1;
  w.to_child = -1;
  w.from_child = -1;
}

std::size_t Supervisor::checkoutSlot() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::size_t slot = kNoSlot;
  for (;;) {
    // Prefer an idle slot that already has a live worker; fall back to a
    // dead slot (which we will respawn below, possibly after its backoff
    // gate).
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].busy && workers_[i].pid > 0) {
        slot = i;
        break;
      }
    }
    if (slot == kNoSlot) {
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (!workers_[i].busy) {
          slot = i;
          break;
        }
      }
    }
    if (slot != kNoSlot) break;
    slot_free_.wait(lock);
  }
  Worker& w = workers_[slot];
  w.busy = true;
  if (w.pid > 0) {
    // Liveness probe: a worker that died idle (external SIGKILL between
    // requests) is reaped here and replaced before it sees the request.
    int status = 0;
    if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
      if (w.to_child >= 0) ::close(w.to_child);
      if (w.from_child >= 0) ::close(w.from_child);
      w.pid = -1;
      w.to_child = -1;
      w.from_child = -1;
    }
  }
  if (w.pid <= 0) {
    auto gate = w.ready_at;
    if (gate > std::chrono::steady_clock::now()) {
      // Backoff: the slot is ours (busy), so sleeping without the lock
      // blocks only this request, not the pool.
      lock.unlock();
      std::this_thread::sleep_until(gate);
      lock.lock();
    }
    (void)spawnLocked(slot, /*is_restart=*/true);
  }
  return slot;
}

std::string Supervisor::handleDeath(std::size_t slot, bool input_fault) {
  std::lock_guard<std::mutex> lock(mutex_);
  Worker& w = workers_[slot];
  std::string detail = "worker unavailable";
  if (w.pid > 0) {
    ::kill(w.pid, SIGKILL);
    int status = 0;
    pid_t reaped = ::waitpid(w.pid, &status, 0);
    detail = reaped == w.pid ? describeStatus(status) : "waitpid failed";
  }
  if (w.to_child >= 0) ::close(w.to_child);
  if (w.from_child >= 0) ::close(w.from_child);
  w.pid = -1;
  w.to_child = -1;
  w.from_child = -1;

  std::uint64_t backoff = options_.backoff_initial_ms;
  if (input_fault) {
    counters_.crashes += 1;
    w.crash_streak += 1;
    for (std::uint64_t i = 1;
         i < w.crash_streak && backoff < options_.backoff_max_ms; ++i) {
      backoff *= 2;
    }
    backoff = std::min(backoff, options_.backoff_max_ms);
  }
  w.ready_at =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(backoff);
  // Respawn eagerly while the streak is short so the pool stays warm; a
  // slot that keeps dying waits out its backoff gate at next checkout.
  if (!input_fault || w.crash_streak < 3) {
    (void)spawnLocked(slot, /*is_restart=*/true);
  }
  return detail;
}

WorkerOutcome Supervisor::analyze(const std::string& request_json,
                                  bool has_deadline,
                                  std::uint64_t deadline_ms) {
  WorkerOutcome outcome;
  std::size_t slot = checkoutSlot();
  bool got_result = false;

  // One silent retry: a write failure means the worker died *before*
  // reading the request (external kill between requests), which is not the
  // input's fault.
  for (int attempt = 0; attempt < 2; ++attempt) {
    pid_t pid = -1;
    int to_child = -1;
    int from_child = -1;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      Worker& w = workers_[slot];
      pid = w.pid;
      to_child = w.to_child;
      from_child = w.from_child;
    }
    if (pid <= 0) {
      outcome.crashed = true;
      outcome.crash_detail = "fork failed";
      break;
    }
    if (!writeFrame(to_child, FrameKind::Request, request_json)) {
      std::string detail = handleDeath(slot, /*input_fault=*/false);
      if (attempt == 0) continue;
      outcome.crashed = true;
      outcome.crash_detail = "request write failed twice (" + detail + ")";
      break;
    }

    auto hang_cutoff = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(deadline_ms +
                                                 options_.grace_ms);
    Frame frame;
    for (;;) {
      if (has_deadline) {
        auto now = std::chrono::steady_clock::now();
        long remaining =
            now >= hang_cutoff
                ? 0
                : static_cast<long>(
                      std::chrono::duration_cast<std::chrono::milliseconds>(
                          hang_cutoff - now)
                          .count()) +
                      1;
        struct pollfd pfd {
          from_child, POLLIN, 0
        };
        int ready = remaining > 0
                        ? ::poll(&pfd, 1,
                                 static_cast<int>(std::min<long>(
                                     remaining, 1000L * 60L * 60L)))
                        : 0;
        if (ready < 0 && errno == EINTR) continue;
        if (ready == 0) {
          // No frame within deadline + grace: the worker has defeated
          // cooperative cancellation. SIGKILL and report.
          {
            std::lock_guard<std::mutex> lock(mutex_);
            counters_.hung_kills += 1;
          }
          (void)handleDeath(slot, /*input_fault=*/true);
          outcome.crashed = true;
          outcome.crash_detail = "hung past deadline grace (SIGKILL)";
          break;
        }
      }
      if (!readFrame(from_child, frame)) {
        outcome.crashed = true;
        outcome.crash_detail = handleDeath(slot, /*input_fault=*/true);
        break;
      }
      if (frame.kind == FrameKind::Phase) {
        outcome.phase = frame.payload;
        continue;
      }
      if (frame.kind == FrameKind::Result) {
        outcome.result_payload = std::move(frame.payload);
        got_result = true;
        break;
      }
      // A 'Q' frame from a worker is protocol corruption: contain it the
      // same way as a crash.
      outcome.crashed = true;
      outcome.crash_detail =
          "protocol corruption (" + handleDeath(slot, true) + ")";
      break;
    }
    break;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    Worker& w = workers_[slot];
    w.busy = false;
    if (got_result) w.crash_streak = 0;
  }
  slot_free_.notify_one();
  return outcome;
}

Supervisor::Counters Supervisor::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::vector<pid_t> Supervisor::alivePids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<pid_t> pids;
  for (const Worker& w : workers_) {
    if (w.pid > 0) pids.push_back(w.pid);
  }
  return pids;
}

std::uint64_t Quarantine::recordCrash(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ++crashes_[key];
}

bool Quarantine::contains(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = crashes_.find(key);
  return it != crashes_.end() && it->second >= threshold_;
}

std::uint64_t Quarantine::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& [key, count] : crashes_) {
    if (count >= threshold_) ++n;
  }
  return n;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Quarantine::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const auto& [key, count] : crashes_) {
    if (count >= threshold_) out.emplace_back(key, count);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Quarantine::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashes_.clear();
}

}  // namespace cuaf::service
