# Empty compiler generated dependencies file for cuaf_parser.
# This may be replaced when dependencies are built.
