file(REMOVE_RECURSE
  "CMakeFiles/cuaf_analysis.dir/checker.cpp.o"
  "CMakeFiles/cuaf_analysis.dir/checker.cpp.o.d"
  "CMakeFiles/cuaf_analysis.dir/fixer.cpp.o"
  "CMakeFiles/cuaf_analysis.dir/fixer.cpp.o.d"
  "CMakeFiles/cuaf_analysis.dir/json_report.cpp.o"
  "CMakeFiles/cuaf_analysis.dir/json_report.cpp.o.d"
  "CMakeFiles/cuaf_analysis.dir/pipeline.cpp.o"
  "CMakeFiles/cuaf_analysis.dir/pipeline.cpp.o.d"
  "libcuaf_analysis.a"
  "libcuaf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuaf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
