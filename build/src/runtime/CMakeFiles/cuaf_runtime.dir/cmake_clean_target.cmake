file(REMOVE_RECURSE
  "libcuaf_runtime.a"
)
