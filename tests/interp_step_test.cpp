// White-box tests of the step-wise interpreter: manual schedules, step
// classification (visible vs invisible), blocking behaviour and memory
// lifetime — driving the Interp API directly rather than through explore().
#include <gtest/gtest.h>

#include "src/runtime/interp.h"
#include "tests/test_util.h"

namespace cuaf {
namespace {

using test::Fixture;

struct Driver {
  std::unique_ptr<Fixture> fixture;
  std::unique_ptr<rt::Interp> interp;

  static Driver make(const std::string& src) {
    Driver d;
    d.fixture = std::make_unique<Fixture>(Fixture::lower(src));
    EXPECT_FALSE(d.fixture->diags.hasErrors()) << d.fixture->diagText();
    d.interp = std::make_unique<rt::Interp>(*d.fixture->module,
                                            *d.fixture->program, nullptr);
    // Entry point: the last top-level proc (helpers are declared first).
    d.interp->start(d.fixture->program->procs.back()->id);
    return d;
  }

  /// Steps task t until finished or blocked; returns steps taken.
  std::size_t drain(std::size_t t, std::size_t cap = 1000) {
    std::size_t n = 0;
    while (n < cap && !interp->taskFinished(t) && interp->canStep(t)) {
      interp->step(t);
      ++n;
    }
    return n;
  }
};

TEST(InterpStep, SequentialProgramFinishes) {
  Driver d = Driver::make(R"(proc p() {
  var x = 1;
  x += 2;
  writeln(x);
})");
  d.drain(0);
  EXPECT_TRUE(d.interp->allFinished());
  EXPECT_TRUE(d.interp->events().empty());
  EXPECT_EQ(d.interp->writelnCount(), 1u);
}

TEST(InterpStep, WritelnCountTracksLoopIterations) {
  Driver d = Driver::make(R"(proc p() {
  for i in 1..5 {
    writeln(i);
  }
})");
  d.drain(0);
  EXPECT_TRUE(d.interp->allFinished());
  EXPECT_EQ(d.interp->writelnCount(), 5u);
}

TEST(InterpStep, WhileLoopRunsToFixpoint) {
  Driver d = Driver::make(R"(proc p() {
  var x = 40;
  while (x > 1) {
    x = x / 2;
    writeln(x);
  }
})");
  d.drain(0);
  EXPECT_TRUE(d.interp->allFinished());
  EXPECT_EQ(d.interp->writelnCount(), 5u);  // 20,10,5,2,1
}

TEST(InterpStep, SpawnCreatesSecondTask) {
  Driver d = Driver::make(R"(proc p() {
  var x = 1;
  begin with (ref x) { writeln(x); }
  writeln(0);
})");
  EXPECT_EQ(d.interp->taskCount(), 1u);
  d.drain(0);
  EXPECT_EQ(d.interp->taskCount(), 2u);
  EXPECT_TRUE(d.interp->taskFinished(0));
  EXPECT_FALSE(d.interp->taskFinished(1));
}

TEST(InterpStep, ChildAfterParentExitSeesUaf) {
  Driver d = Driver::make(R"(proc p() {
  var x = 1;
  begin with (ref x) { writeln(x); }
})");
  d.drain(0);  // parent runs to completion, killing x
  EXPECT_TRUE(d.interp->taskFinished(0));
  d.drain(1);
  EXPECT_TRUE(d.interp->allFinished());
  ASSERT_EQ(d.interp->events().size(), 1u);
  EXPECT_EQ(d.interp->events()[0].loc.line, 3u);
}

TEST(InterpStep, ChildBeforeParentExitIsClean) {
  Driver d = Driver::make(R"(proc p() {
  var x = 1;
  begin with (ref x) { writeln(x); }
})");
  // Step the parent just enough to spawn, then run the child first.
  while (d.interp->taskCount() < 2 && d.interp->canStep(0)) d.interp->step(0);
  d.drain(1);
  d.drain(0);
  EXPECT_TRUE(d.interp->allFinished());
  EXPECT_TRUE(d.interp->events().empty());
}

TEST(InterpStep, SyncReadBlocksUntilWrite) {
  Driver d = Driver::make(R"(proc p() {
  var x = 0;
  var d$: sync bool;
  begin with (ref x) { x = 1; d$ = true; }
  d$;
  writeln(x);
})");
  d.drain(0);  // parent blocks at readFE
  EXPECT_FALSE(d.interp->taskFinished(0));
  EXPECT_FALSE(d.interp->canStep(0));  // blocked
  d.drain(1);  // child signals
  EXPECT_TRUE(d.interp->canStep(0));
  d.drain(0);
  EXPECT_TRUE(d.interp->allFinished());
  EXPECT_TRUE(d.interp->events().empty());
}

TEST(InterpStep, WriteEFBlocksWhenFull) {
  Driver d = Driver::make(R"(proc p() {
  var d$: sync bool = true;
  d$ = false;
})");
  d.drain(0);
  EXPECT_FALSE(d.interp->taskFinished(0));
  EXPECT_FALSE(d.interp->canStep(0));  // writeEF on a full variable blocks
}

TEST(InterpStep, AtomicWaitForBlocksUntilValue) {
  Driver d = Driver::make(R"(proc p() {
  var c: atomic int;
  begin { c.add(1); c.add(1); }
  c.waitFor(2);
})");
  d.drain(0);
  EXPECT_FALSE(d.interp->canStep(0));  // waits for value 2
  d.drain(1);
  EXPECT_TRUE(d.interp->canStep(0));
  d.drain(0);
  EXPECT_TRUE(d.interp->allFinished());
}

TEST(InterpStep, SyncRegionPopWaitsForChildren) {
  Driver d = Driver::make(R"(proc p() {
  var x = 0;
  sync {
    begin with (ref x) { x += 1; }
  }
  writeln(x);
})");
  d.drain(0);  // parent reaches the fence and blocks
  EXPECT_FALSE(d.interp->taskFinished(0));
  EXPECT_FALSE(d.interp->canStep(0));
  d.drain(1);
  EXPECT_TRUE(d.interp->canStep(0));
  d.drain(0);
  EXPECT_TRUE(d.interp->allFinished());
  EXPECT_TRUE(d.interp->events().empty());
}

TEST(InterpStep, VisibleClassificationForSyncOps) {
  Driver d = Driver::make(R"(proc p() {
  var local = 1;
  local += 1;
  var d$: sync bool;
  d$ = true;
})");
  // Everything up to the writeEF is invisible (own-task data only).
  while (!d.interp->taskFinished(0) && !d.interp->nextStepVisible(0)) {
    d.interp->step(0);
  }
  EXPECT_FALSE(d.interp->taskFinished(0));  // poised at the sync write
  EXPECT_TRUE(d.interp->nextStepVisible(0));
}

TEST(InterpStep, CrossTaskAccessIsVisible) {
  Driver d = Driver::make(R"(proc p() {
  var shared = 1;
  begin with (ref shared) {
    var own = 2;
    own += 1;
    shared += own;
  }
})");
  d.drain(0);
  // The child's own-variable work is invisible; it becomes visible exactly
  // at the cross-task access.
  std::size_t steps = 0;
  while (!d.interp->taskFinished(1) && !d.interp->nextStepVisible(1) &&
         steps < 100) {
    d.interp->step(1);
    ++steps;
  }
  EXPECT_TRUE(d.interp->nextStepVisible(1));
}

TEST(InterpStep, InShadowIsTaskLocalAndInvisible) {
  Driver d = Driver::make(R"(proc p() {
  var x = 1;
  begin with (in x) {
    writeln(x);
  }
})");
  d.drain(0);
  // The child only reads its shadow: every step is invisible, and running
  // it after the parent died is clean.
  EXPECT_TRUE(d.interp->taskFinished(0));
  std::size_t visible = 0;
  while (!d.interp->taskFinished(1) && d.interp->canStep(1)) {
    if (d.interp->nextStepVisible(1)) ++visible;
    d.interp->step(1);
  }
  // The only visible step is the task-finishing frame pop.
  EXPECT_LE(visible, 1u);
  EXPECT_TRUE(d.interp->events().empty());
}

TEST(InterpStep, RefParamCallSharesCell) {
  Driver d = Driver::make(R"(proc bump(ref v: int) { v += 5; }
proc p() {
  var x = 1;
  bump(x);
  if (x == 6) { writeln("yes"); }
})");
  d.drain(0);
  EXPECT_TRUE(d.interp->allFinished());
  EXPECT_EQ(d.interp->writelnCount(), 1u);
}

TEST(InterpStep, ReturnValueThroughExpressionCall) {
  Driver d = Driver::make(R"(proc twice(v: int): int { return v * 2; }
proc p() {
  var x = twice(4);
  if (x == 8) { writeln("ok"); }
})");
  d.drain(0);
  EXPECT_TRUE(d.interp->allFinished());
  EXPECT_EQ(d.interp->writelnCount(), 1u);
}

TEST(InterpStep, StringConcatAndComparison) {
  Driver d = Driver::make(R"(proc p() {
  var a = "foo";
  var b = a + "bar";
  if (b == "foobar") { writeln(b); }
})");
  d.drain(0);
  EXPECT_EQ(d.interp->writelnCount(), 1u);
}

TEST(InterpStep, DivisionByZeroIsDefined) {
  Driver d = Driver::make(R"(proc p() {
  var x = 10;
  var y = 0;
  var z = x / y;
  var m = x % y;
  writeln(z + m);
})");
  d.drain(0);
  EXPECT_TRUE(d.interp->allFinished());  // no crash, defined fallback
}

TEST(InterpStep, ScopeExitKillsOnlyScopeLocals) {
  Driver d = Driver::make(R"(proc p() {
  var outer = 1;
  {
    var inner = 2;
    outer += inner;
  }
  writeln(outer);
})");
  d.drain(0);
  EXPECT_TRUE(d.interp->allFinished());
  EXPECT_TRUE(d.interp->events().empty());
}

TEST(InterpStep, GrandchildInheritsEnvironment) {
  Driver d = Driver::make(R"(proc p() {
  var x = 1;
  var a$: sync bool;
  begin with (ref x) {
    begin with (ref x) {
      x += 1;
      a$ = true;
    }
  }
  a$;
})");
  d.drain(0);  // parent blocks
  d.drain(1);  // child A spawns grandchild
  EXPECT_EQ(d.interp->taskCount(), 3u);
  d.drain(2);  // grandchild signals
  d.drain(0);
  EXPECT_TRUE(d.interp->taskFinished(0));
  EXPECT_TRUE(d.interp->events().empty());
}

}  // namespace
}  // namespace cuaf
