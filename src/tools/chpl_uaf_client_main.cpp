// chpl-uaf-client: scripting/test client for the chpl-uaf-serve daemon.
//
// Usage:
//   chpl-uaf-client --socket PATH [commands]
//   chpl-uaf-client --connect ADDR[,ADDR...] [commands]
//     --analyze FILE...  send one analyze request per file ("-" = stdin)
//     --batch            send every --analyze file in one analyze_batch
//                        request (split per shard and reassembled when
//                        sharded; one combined response line)
//     --deadline-ms N    attach a per-request analysis deadline to every
//                        analyze request (timeouts come back as structured
//                        errors, not hangs)
//     --stats            request daemon/cache statistics
//     --cache-clear      drop every cached result
//     --shutdown         stop the daemon
//     --shards N         the daemon was started with --shards N: shard k
//                        listens on PATH.k (or port+k for a host:port
//                        --socket), and analyze requests route by
//                        cuaf::analysisCacheKey over a consistent-hash
//                        ring, so a given source always lands on the same
//                        shard's warm cache. stats/cache_clear/shutdown
//                        broadcast to every reachable shard (one response
//                        line per shard, ascending).
//     --connect ADDRS    explicit comma-separated shard address list (unix
//                        paths and/or host:port endpoints) — the ring spans
//                        whatever the list names; replaces --socket/--shards
//     --retries N        retry a failed round-trip up to N times with
//                        decorrelated-jitter backoff (uniform in
//                        [50ms, min(2s, 3*prev)] — concurrent clients
//                        spread out instead of retrying in lockstep).
//                        Retried failures: connection errors (the client
//                        reconnects) and the transient response codes
//                        "overloaded" and "worker_crashed". With shards, a
//                        shard that exhausts its retries trips its circuit
//                        breaker open and its keys fail over along the
//                        ring; a later half-open probe un-marks the shard
//                        the moment it answers again.
//     --hedge-ms N       tail-latency hedging for routed analyze requests:
//                        if the owning shard has not answered within N ms,
//                        duplicate the (idempotent) request to the next
//                        ring shard and take the first response
//     --backoff-seed N   seeds the jitter schedule (deterministic; defaults
//                        to a per-process value)
//   With no command, raw request lines are forwarded from stdin and the
//   responses printed — a newline-delimited JSON pass-through (single
//   shard only: raw lines carry no routable key).
//
// Exit code: 0 when every response has status "ok", 1 when any response
// reports an error, 2 on connection/file problems.
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/checker.h"
#include "src/analysis/json_report.h"
#include "src/analysis/snapshot.h"
#include "src/net/hash_ring.h"
#include "src/net/shard_client.h"

namespace {

using cuaf::net::ShardClient;

/// One analysis input: its request fields plus the routing key the sharded
/// daemon's cache uses for this (name, source) pair. The client never sends
/// an "options" field, so default AnalysisOptions are exactly what the
/// daemon fingerprints (deadlines are excluded from the fingerprint).
struct AnalyzeItem {
  std::string name;
  std::string source;
  std::uint64_t key = 0;
};

/// Splits the top-level elements of the "results":[...] array of a batch
/// response. String- and depth-aware, so commas and brackets inside
/// reports or diagnostics never split. Returns false on a malformed
/// response.
bool splitBatchResults(const std::string& response,
                       std::vector<std::string>& out) {
  static constexpr std::string_view kMarker = "\"results\":[";
  std::size_t start = response.find(kMarker);
  if (start == std::string::npos) return false;
  std::size_t i = start + kMarker.size();
  int depth = 0;
  bool in_string = false, escaped = false;
  std::size_t elem_begin = i;
  for (; i < response.size(); ++i) {
    char c = response[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (depth == 0) {
        // Closing ']' of the results array.
        if (c != ']') return false;
        if (i > elem_begin) {
          out.push_back(response.substr(elem_begin, i - elem_begin));
        }
        return true;
      }
      --depth;
    } else if (c == ',' && depth == 0) {
      out.push_back(response.substr(elem_begin, i - elem_begin));
      elem_begin = i + 1;
    }
  }
  return false;
}

/// Extracts a non-negative integer field ("elapsed_us":N) from the
/// top of a response line. Returns 0 when absent.
std::uint64_t extractElapsedUs(const std::string& response) {
  static constexpr std::string_view kMarker = "\"elapsed_us\":";
  std::size_t pos = response.find(kMarker);
  if (pos == std::string::npos) return 0;
  return std::strtoull(response.c_str() + pos + kMarker.size(), nullptr, 10);
}

std::string batchRequestFor(std::int64_t id,
                            const std::vector<AnalyzeItem>& items,
                            const std::vector<std::size_t>& indices,
                            bool has_deadline,
                            unsigned long long deadline_ms) {
  std::string request =
      "{\"op\":\"analyze_batch\",\"id\":" + std::to_string(id) +
      ",\"items\":[";
  for (std::size_t j = 0; j < indices.size(); ++j) {
    const AnalyzeItem& item = items[indices[j]];
    if (j) request += ',';
    request += "{\"name\":\"" + cuaf::jsonEscape(item.name) +
               "\",\"source\":\"" + cuaf::jsonEscape(item.source) + "\"}";
  }
  request += "]";
  if (has_deadline) {
    request += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  request += "}";
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string connect_list;
  std::vector<std::string> analyze_files;
  bool batch = false;
  bool stats = false, cache_clear = false, shutdown = false;
  bool has_deadline = false;
  unsigned long long deadline_ms = 0;
  cuaf::net::ShardClientOptions client_options;
  client_options.backoff_seed = static_cast<std::uint64_t>(::getpid());
  std::size_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--socket") {
      if (i + 1 >= argc) {
        std::cerr << "--socket needs a path\n";
        return 2;
      }
      socket_path = argv[++i];
    } else if (arg == "--connect") {
      if (i + 1 >= argc) {
        std::cerr << "--connect needs a comma-separated address list\n";
        return 2;
      }
      connect_list = argv[++i];
    } else if (arg == "--analyze") {
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        analyze_files.emplace_back(argv[++i]);
      }
      if (i + 1 < argc && std::string_view(argv[i + 1]) == "-") {
        analyze_files.emplace_back(argv[++i]);
      }
      if (analyze_files.empty()) {
        std::cerr << "--analyze needs at least one file\n";
        return 2;
      }
    } else if (arg == "--batch") {
      batch = true;
    } else if (arg == "--deadline-ms") {
      if (i + 1 >= argc) {
        std::cerr << "--deadline-ms needs a millisecond budget\n";
        return 2;
      }
      has_deadline = true;
      deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--cache-clear") {
      cache_clear = true;
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else if (arg == "--shards") {
      if (i + 1 >= argc) {
        std::cerr << "--shards needs a count\n";
        return 2;
      }
      shards = std::strtoull(argv[++i], nullptr, 10);
      if (shards == 0 || shards > 256) {
        std::cerr << "--shards must be in [1, 256]\n";
        return 2;
      }
    } else if (arg == "--retries") {
      if (i + 1 >= argc) {
        std::cerr << "--retries needs a count\n";
        return 2;
      }
      client_options.retries =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--hedge-ms") {
      if (i + 1 >= argc) {
        std::cerr << "--hedge-ms needs a millisecond budget\n";
        return 2;
      }
      client_options.hedge_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--backoff-seed") {
      if (i + 1 >= argc) {
        std::cerr << "--backoff-seed needs a number\n";
        return 2;
      }
      client_options.backoff_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: chpl-uaf-client --socket PATH|--connect ADDRS "
                   "[--analyze FILE...|--deadline-ms N|--stats|--cache-clear|"
                   "--shutdown] [--batch]\n"
                   "       [--shards N] [--retries N] [--hedge-ms N] "
                   "[--backoff-seed N]\n"
                   "with no command, forwards raw request lines from stdin "
                   "(single shard only)\n"
                   "  --batch          one analyze_batch request over all "
                   "--analyze files (split per\n"
                   "                   shard and reassembled in input order)\n"
                   "  --deadline-ms N  per-request analysis budget for "
                   "--analyze (structured timeout errors)\n"
                   "  --shards N       route by analysis cache key across a "
                   "--shards N daemon\n"
                   "  --connect ADDRS  explicit shard addresses (unix paths "
                   "and/or host:port), comma-separated;\n"
                   "                   a single address with --shards N is "
                   "a base the N shard\n"
                   "                   addresses are derived from (TCP: "
                   "base port + k)\n"
                   "  --retries N      retry connection errors and transient "
                   "overloaded/worker_crashed\n"
                   "                   responses with decorrelated-jitter "
                   "backoff; with shards, an\n"
                   "                   unreachable shard's circuit breaker "
                   "opens and its keys fail over\n"
                   "  --hedge-ms N     duplicate a routed analyze to the "
                   "next shard after N ms; first\n"
                   "                   response wins (idempotent requests "
                   "only)\n"
                   "  --backoff-seed N deterministic jitter schedule seed\n";
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << '\n';
      return 2;
    }
  }
  if (socket_path.empty() && connect_list.empty()) {
    std::cerr << "--socket or --connect is required (see --help)\n";
    return 2;
  }
  if (batch && analyze_files.empty()) {
    std::cerr << "--batch needs --analyze FILE...\n";
    return 2;
  }

  try {
    std::vector<cuaf::net::Address> addresses;
    if (connect_list.empty()) {
      addresses = ShardClient::addressesFor(socket_path, shards);
    } else {
      addresses = cuaf::net::splitAddressList(connect_list);
      // A single --connect address with --shards N names the cluster base:
      // derive the sibling shard addresses the same way the server does
      // (unix "<base>.<k>", TCP base-port + k). An explicit multi-address
      // list is always taken verbatim.
      if (addresses.size() == 1 && shards > 1) {
        addresses = ShardClient::addressesFor(connect_list, shards);
      }
    }
    ShardClient client(addresses, client_options);
    bool all_ok = true;
    std::int64_t id = 0;

    // Load the analysis inputs and compute each one's routing key up
    // front, so a read failure exits before any request is sent.
    std::vector<AnalyzeItem> items;
    items.reserve(analyze_files.size());
    for (const std::string& file : analyze_files) {
      AnalyzeItem item;
      if (file == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        item.source = ss.str();
        item.name = "<stdin>";
      } else {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
          std::cerr << "cannot read " << file << '\n';
          return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        item.source = ss.str();
        item.name = file;
      }
      item.key =
          cuaf::analysisCacheKey(item.name, item.source, cuaf::AnalysisOptions{});
      items.push_back(std::move(item));
    }

    auto emit = [&](const std::string& response) {
      all_ok &= ShardClient::responseOk(response);
      std::cout << response << '\n';
    };

    /// Broadcast ops go to every reachable shard, lowest shard first, one
    /// response line per shard.
    auto broadcast = [&](const std::string& op) {
      for (std::size_t shard : client.reachableShards()) {
        std::string request =
            "{\"op\":\"" + op + "\",\"id\":" + std::to_string(++id) + "}";
        try {
          emit(client.issueOn(shard, request));
        } catch (const std::exception& e) {
          // The breaker is open now; later broadcasts skip the shard.
          std::cerr << "chpl-uaf-client: shard " << shard << ": " << e.what()
                    << '\n';
          all_ok = false;
        }
      }
    };

    if (batch) {
      // One combined analyze_batch: split the items per shard (grouped by
      // routing key, input order preserved within each group), then
      // reassemble the per-shard results index-addressed so the combined
      // "results" array matches the input order exactly. When a shard
      // dies mid-batch, its unanswered items re-group onto the survivors.
      // Grouping uses a command-local ring with permanent dead-marking so
      // the regroup loop always terminates; the per-shard round-trips
      // still get the full retry/backoff policy.
      std::int64_t batch_id = ++id;
      cuaf::net::HashRing batch_ring(client.shardCount());
      std::vector<std::string> results(items.size());
      std::vector<bool> answered(items.size(), false);
      std::uint64_t elapsed_us = 0;
      bool done = false;
      while (!done) {
        std::vector<std::vector<std::size_t>> groups(client.shardCount());
        for (std::size_t i2 = 0; i2 < items.size(); ++i2) {
          if (!answered[i2]) {
            groups[batch_ring.route(items[i2].key)].push_back(i2);
          }
        }
        done = true;
        for (std::size_t shard = 0; shard < groups.size(); ++shard) {
          if (groups[shard].empty()) continue;
          std::string request = batchRequestFor(batch_id, items, groups[shard],
                                                has_deadline, deadline_ms);
          std::string response;
          try {
            response = client.issueOn(shard, request);
          } catch (const std::exception&) {
            batch_ring.markDead(shard);
            if (batch_ring.aliveCount() == 0) throw;
            done = false;  // re-group this shard's items onto survivors
            continue;
          }
          if (!ShardClient::responseOk(response)) {
            // A structured whole-batch error (e.g. overloaded past the
            // retry budget) cannot be split per item; surface it verbatim.
            emit(response);
            return 1;
          }
          std::vector<std::string> shard_results;
          if (!splitBatchResults(response, shard_results) ||
              shard_results.size() != groups[shard].size()) {
            throw std::runtime_error("malformed analyze_batch response from "
                                     "shard " +
                                     std::to_string(shard));
          }
          for (std::size_t j = 0; j < shard_results.size(); ++j) {
            results[groups[shard][j]] = std::move(shard_results[j]);
            answered[groups[shard][j]] = true;
          }
          elapsed_us = std::max(elapsed_us, extractElapsedUs(response));
        }
      }
      std::string combined =
          "{\"id\":" + std::to_string(batch_id) +
          ",\"op\":\"analyze_batch\",\"status\":\"ok\",\"elapsed_us\":" +
          std::to_string(elapsed_us) +
          ",\"count\":" + std::to_string(results.size()) + ",\"results\":[";
      for (std::size_t i2 = 0; i2 < results.size(); ++i2) {
        if (i2) combined += ',';
        combined += results[i2];
      }
      combined += "]}";
      emit(combined);
    } else {
      for (const AnalyzeItem& item : items) {
        std::string request = "{\"op\":\"analyze\",\"id\":" +
                              std::to_string(++id) + ",\"name\":\"" +
                              cuaf::jsonEscape(item.name) + "\",\"source\":\"" +
                              cuaf::jsonEscape(item.source) + "\"";
        if (has_deadline) {
          request += ",\"deadline_ms\":" + std::to_string(deadline_ms);
        }
        request += "}";
        emit(client.issueRouted(item.key, request));
      }
    }

    if (stats) broadcast("stats");
    if (cache_clear) broadcast("cache_clear");
    if (shutdown) broadcast("shutdown");

    if (analyze_files.empty() && !stats && !cache_clear && !shutdown) {
      if (client.shardCount() > 1) {
        std::cerr << "raw stdin pass-through cannot be routed; use --analyze "
                     "or a single shard\n";
        return 2;
      }
      std::string line;
      while (std::getline(std::cin, line)) {
        if (line.empty()) continue;
        emit(client.issueOn(0, line));
      }
    }
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "chpl-uaf-client: " << e.what() << '\n';
    return 2;
  }
}
