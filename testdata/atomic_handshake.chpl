/* Atomic-based synchronization: dynamically safe, but the paper-faithful
   analysis cannot model it (run with --model-atomics to discharge). */
proc atomicHandshake() {
  var data: int = 0;
  var ready: atomic int;
  begin with (ref data) {
    data = 42;
    ready.add(1);
  }
  ready.waitFor(1);
  writeln(data);
}
