#include "src/lexer/lexer.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <string>

namespace cuaf {

namespace {
bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

Lexer::Lexer(const SourceManager& sm, FileId file, DiagnosticEngine& diags)
    : sm_(sm), file_(file), diags_(diags), src_(sm.bufferContents(file)) {}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (atEnd() || src_[pos_] != expected) return false;
  advance();
  return true;
}

SourceLoc Lexer::here() const { return SourceLoc{file_, line_, col_}; }

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      SourceLoc open = here();
      advance();
      advance();
      int depth = 1;  // Chapel block comments nest
      while (!atEnd() && depth > 0) {
        if (peek() == '/' && peek(1) == '*') {
          advance();
          advance();
          ++depth;
        } else if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          --depth;
        } else {
          advance();
        }
      }
      if (depth > 0) {
        diags_.error(open, "syntax", "unterminated block comment");
      }
    } else {
      break;
    }
  }
}

Token Lexer::makeToken(TokKind kind, std::size_t begin) const {
  Token t;
  t.kind = kind;
  t.text = src_.substr(begin, pos_ - begin);
  t.loc = tok_loc_;
  return t;
}

Token Lexer::lexIdentifier(std::size_t begin) {
  while (!atEnd() && isIdentCont(peek())) advance();
  // Chapel convention: sync/single variables are suffixed with '$'.
  while (!atEnd() && peek() == '$') advance();
  Token t = makeToken(TokKind::Identifier, begin);
  t.kind = keywordKind(t.text);
  if (t.kind != TokKind::Identifier && t.text.find('$') != std::string::npos) {
    t.kind = TokKind::Identifier;  // e.g. `in$` is an identifier, not keyword
  }
  return t;
}

Token Lexer::lexNumber(std::size_t begin) {
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
    advance();
  }
  bool is_real = false;
  // '.' begins a fraction only if not the '..' range operator.
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_real = true;
    advance();
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
      advance();
    }
  }
  if (peek() == 'e' || peek() == 'E') {
    std::size_t lookahead = 1;
    if (peek(1) == '+' || peek(1) == '-') lookahead = 2;
    if (std::isdigit(static_cast<unsigned char>(peek(lookahead)))) {
      is_real = true;
      for (std::size_t i = 0; i <= lookahead; ++i) advance();
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
        advance();
      }
    }
  }
  Token t = makeToken(is_real ? TokKind::RealLit : TokKind::IntLit, begin);
  if (is_real) {
    t.real_value = std::strtod(std::string(t.text).c_str(), nullptr);
  } else {
    auto [ptr, ec] = std::from_chars(t.text.data(), t.text.data() + t.text.size(),
                                     t.int_value);
    if (ec != std::errc()) {
      diags_.error(t.loc, "syntax", "integer literal out of range");
      t.int_value = 0;
    }
  }
  return t;
}

Token Lexer::lexString(std::size_t begin) {
  while (!atEnd() && peek() != '"') {
    if (peek() == '\\' && pos_ + 1 < src_.size()) advance();
    advance();
  }
  if (atEnd()) {
    diags_.error(tok_loc_, "syntax", "unterminated string literal");
  } else {
    advance();  // closing quote
  }
  return makeToken(TokKind::StringLit, begin);
}

Token Lexer::next() {
  skipTrivia();
  tok_loc_ = here();
  if (atEnd()) return makeToken(TokKind::Eof, pos_);
  std::size_t begin = pos_;
  char c = advance();

  if (isIdentStart(c)) return lexIdentifier(begin);
  if (std::isdigit(static_cast<unsigned char>(c))) return lexNumber(begin);

  switch (c) {
    case '"': return lexString(begin);
    case '{': return makeToken(TokKind::LBrace, begin);
    case '}': return makeToken(TokKind::RBrace, begin);
    case '(': return makeToken(TokKind::LParen, begin);
    case ')': return makeToken(TokKind::RParen, begin);
    case ',': return makeToken(TokKind::Comma, begin);
    case ';': return makeToken(TokKind::Semi, begin);
    case ':': return makeToken(TokKind::Colon, begin);
    case '=':
      return makeToken(match('=') ? TokKind::EqEq : TokKind::Assign, begin);
    case '!':
      return makeToken(match('=') ? TokKind::NotEq : TokKind::Bang, begin);
    case '<':
      return makeToken(match('=') ? TokKind::LessEq : TokKind::Less, begin);
    case '>':
      return makeToken(match('=') ? TokKind::GreaterEq : TokKind::Greater,
                       begin);
    case '+':
      if (match('+')) return makeToken(TokKind::PlusPlus, begin);
      if (match('=')) return makeToken(TokKind::PlusAssign, begin);
      return makeToken(TokKind::Plus, begin);
    case '-':
      if (match('-')) return makeToken(TokKind::MinusMinus, begin);
      if (match('=')) return makeToken(TokKind::MinusAssign, begin);
      return makeToken(TokKind::Minus, begin);
    case '*':
      if (match('=')) return makeToken(TokKind::StarAssign, begin);
      return makeToken(TokKind::Star, begin);
    case '/': return makeToken(TokKind::Slash, begin);
    case '%': return makeToken(TokKind::Percent, begin);
    case '&':
      if (match('&')) return makeToken(TokKind::AmpAmp, begin);
      break;
    case '|':
      if (match('|')) return makeToken(TokKind::PipePipe, begin);
      break;
    case '.':
      return makeToken(match('.') ? TokKind::DotDot : TokKind::Dot, begin);
    default: break;
  }
  diags_.error(tok_loc_, "syntax",
               "unexpected character '" + std::string(1, c) + "'");
  return next();
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> out;
  for (;;) {
    Token t = next();
    out.push_back(t);
    if (t.kind == TokKind::Eof) break;
  }
  return out;
}

}  // namespace cuaf
