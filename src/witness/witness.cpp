#include "src/witness/witness.h"

#include "src/support/json.h"
#include "src/witness/replay.h"

namespace cuaf::witness {

namespace {

const char* ruleName(pps::Rule r) {
  switch (r) {
    case pps::Rule::Initial: return "init";
    case pps::Rule::SingleRead: return "single-read";
    case pps::Rule::Read: return "read";
    case pps::Rule::Write: return "write";
    case pps::Rule::Barrier: return "barrier";
    case pps::Rule::Chaos: return "chaos";
  }
  return "?";
}

const char* opName(ccfg::SyncOp op) {
  switch (op) {
    case ccfg::SyncOp::ReadFE: return "readFE";
    case ccfg::SyncOp::ReadFF: return "readFF";
    case ccfg::SyncOp::WriteEF: return "writeEF";
    case ccfg::SyncOp::AtomicFill: return "atomicFill";
    case ccfg::SyncOp::AtomicWait: return "atomicWait";
    case ccfg::SyncOp::BarrierWait: return "barrierWait";
    case ccfg::SyncOp::ChaosFill: return "chaosFill";
    case ccfg::SyncOp::ChaosDrain: return "chaosDrain";
  }
  return "?";
}

const pps::ReportSite* findSite(const pps::Result& pps_result, AccessId a) {
  for (const pps::ReportSite& site : pps_result.report_sites) {
    if (site.access == a) return &site;
  }
  return nullptr;
}

/// Walks the sink's parent chain back to the initial state and translates
/// it, in execution order, into source-level sync operations.
std::vector<ScheduleStep> extractSchedule(const ccfg::Graph& graph,
                                          const pps::Result& pps_result,
                                          std::uint32_t sink_trace) {
  std::vector<const pps::TraceEntry*> chain;
  std::uint32_t cur = sink_trace;
  while (cur < pps_result.trace.size()) {
    const pps::TraceEntry& e = pps_result.trace[cur];
    if (e.rule == pps::Rule::Initial) break;
    chain.push_back(&e);
    if (e.parent == e.id) break;  // defensive: malformed chain
    cur = e.parent;
  }

  std::vector<ScheduleStep> schedule;
  schedule.reserve(chain.size());
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const pps::TraceEntry& e = **it;
    ScheduleStep step;
    step.rule = e.rule;
    for (NodeId n : e.executed) {
      const ccfg::Node& node = graph.node(n);
      if (!node.sync) continue;
      step.syncs.push_back(SyncStep{graph.varName(node.sync->var),
                                    opName(node.sync->op), node.sync->loc});
    }
    schedule.push_back(std::move(step));
  }
  return schedule;
}

}  // namespace

std::vector<Witness> buildWitnesses(const ccfg::Graph& graph,
                                    const pps::Result& pps_result,
                                    const Program* program,
                                    const Options& options) {
  std::vector<Witness> out;
  if (!options.enabled) return out;
  out.reserve(pps_result.unsafe.size());

  for (AccessId a : pps_result.unsafe) {
    const ccfg::OvUse& access = graph.access(a);
    Witness w;
    w.access_loc = access.loc;
    w.var_name = graph.varName(access.var);

    const pps::ReportSite* site = findSite(pps_result, a);
    if (site != nullptr) {
      w.from_tail = site->from_tail;
      w.schedule = extractSchedule(graph, pps_result, site->sink_trace);
    }

    if (options.replay && program != nullptr) {
      std::vector<SourceLoc> guides;
      for (const ScheduleStep& step : w.schedule) {
        for (const SyncStep& sync : step.syncs) guides.push_back(sync.loc);
      }
      const SourceLoc task_loc = graph.task(access.task).loc;
      ReplayOutcome replay = replaySchedule(graph, *program, access.loc,
                                            task_loc, guides, options);
      w.replayed = true;
      w.replay_steps = replay.steps;
      w.replay_runs = replay.runs;
      w.hb_agrees = !replay.hb_disagrees;
      w.stopped = replay.stopped;
      if (replay.confirmed) {
        w.verdict = Verdict::Confirmed;
        out.push_back(std::move(w));
        continue;
      }
    }
    w.verdict = w.from_tail ? Verdict::Tail : Verdict::Unconfirmed;
    bool stopped = w.stopped != StopReason::None;
    out.push_back(std::move(w));
    if (stopped) break;  // deadline hit: skip the remaining warnings' replays
  }
  return out;
}

const char* verdictName(Verdict v) {
  switch (v) {
    case Verdict::Confirmed: return "confirmed";
    case Verdict::Unconfirmed: return "unconfirmed";
    case Verdict::Tail: return "tail";
  }
  return "?";
}

std::string toJson(const Witness& w) {
  std::string out = "{\"verdict\":\"";
  out += verdictName(w.verdict);
  out += "\",\"fromTail\":";
  out += w.from_tail ? "true" : "false";
  out += ",\"replayed\":";
  out += w.replayed ? "true" : "false";
  out += ",\"replaySteps\":" + std::to_string(w.replay_steps);
  out += ",\"replayRuns\":" + std::to_string(w.replay_runs);
  out += ",\"hbAgrees\":";
  out += w.hb_agrees ? "true" : "false";
  out += ",\"variable\":\"" + jsonEscape(w.var_name) + "\"";
  out += ",\"line\":" + std::to_string(w.access_loc.line);
  out += ",\"column\":" + std::to_string(w.access_loc.column);
  out += ",\"schedule\":[";
  bool first_step = true;
  for (const ScheduleStep& step : w.schedule) {
    if (!first_step) out += ',';
    first_step = false;
    out += "{\"rule\":\"";
    out += ruleName(step.rule);
    out += "\",\"syncs\":[";
    bool first_sync = true;
    for (const SyncStep& sync : step.syncs) {
      if (!first_sync) out += ',';
      first_sync = false;
      out += "{\"var\":\"" + jsonEscape(sync.var) + "\"";
      out += ",\"op\":\"";
      out += sync.op;
      out += "\",\"line\":" + std::to_string(sync.loc.line);
      out += ",\"column\":" + std::to_string(sync.loc.column);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace cuaf::witness
