// Tests for the opt-in extensions beyond the paper's implementation
// (its stated future work): atomic-integer modeling, bounded loop
// unrolling, and deadlock-point reporting.
#include <gtest/gtest.h>

#include "src/analysis/pipeline.h"
#include "src/corpus/generator.h"
#include "src/runtime/explore.h"
#include "tests/test_util.h"

namespace cuaf {
namespace {

using test::Fixture;

AnalysisOptions atomicOpts() {
  AnalysisOptions opts;
  opts.build.model_atomics = true;
  return opts;
}

/// The paper baseline: no atomic modeling, no sync-loop handling.
AnalysisOptions faithfulOpts() {
  AnalysisOptions opts;
  opts.build.model_atomics = false;
  opts.build.model_sync_loops = false;
  return opts;
}

AnalysisOptions unrollOpts(unsigned max = 8) {
  AnalysisOptions opts;
  opts.build.unroll_loops = true;
  opts.build.max_unroll_iterations = max;
  // Isolate the bounded-unroll extension: without this, loops beyond the
  // unroll limit fall back to widening instead of the unsupported skip.
  opts.build.model_sync_loops = false;
  return opts;
}

// ---------------------------------------------------------------------------
// Atomic modeling (§IV-A sketch: writes = non-blocking fill, waitFor =
// SINGLE-READ)
// ---------------------------------------------------------------------------

const char* kAtomicHandshake = R"(proc p() {
  var x = 3;
  var count: atomic int;
  begin with (ref x) {
    writeln(x);
    count.add(1);
  }
  count.waitFor(1);
  writeln(x);
})";

TEST(AtomicModeling, EliminatesHandshakeFalsePositives) {
  Pipeline faithful(faithfulOpts());
  ASSERT_TRUE(faithful.runSource("t", kAtomicHandshake));
  EXPECT_EQ(faithful.analysis().warningCount(), 2u);  // paper behaviour

  Pipeline extended(atomicOpts());
  ASSERT_TRUE(extended.runSource("t", kAtomicHandshake));
  EXPECT_EQ(extended.analysis().warningCount(), 0u);
}

TEST(AtomicModeling, StillFlagsAccessesAfterTheFill) {
  Pipeline extended(atomicOpts());
  ASSERT_TRUE(extended.runSource("t", R"(proc p() {
  var x = 3;
  var count: atomic int;
  begin with (ref x) {
    count.add(1);
    writeln(x);     // after the fill: no later anchor -> unsafe
  }
  count.waitFor(1);
})"));
  EXPECT_EQ(extended.analysis().warningCount(), 1u);
}

TEST(AtomicModeling, StillFlagsMissingWait) {
  // The child fills, but the parent never waits: the fill is not a PF, so
  // both the data access and the atomic access itself (which really does
  // race the parent's scope exit) stay flagged.
  Pipeline extended(atomicOpts());
  ASSERT_TRUE(extended.runSource("t", R"(proc p() {
  var x = 3;
  var count: atomic int;
  begin with (ref x) {
    writeln(x);
    count.add(1);
  }
})"));
  EXPECT_EQ(extended.analysis().warningCount(), 2u);
}

TEST(AtomicModeling, PlainAtomicReadIsNotASyncEvent) {
  Pipeline extended(atomicOpts());
  ASSERT_TRUE(extended.runSource("t", R"(proc p() {
  var x = 3;
  var count: atomic int;
  begin with (ref x) {
    writeln(x);
    count.add(1);
  }
  count.read();    // non-blocking read: establishes no ordering
})"));
  // read() is not a wait: accesses stay unsafe.
  EXPECT_EQ(extended.analysis().warningCount(), 2u);
}

TEST(AtomicModeling, AgreesWithOracleOnHandshake) {
  Pipeline extended(atomicOpts());
  ASSERT_TRUE(extended.runSource("t", kAtomicHandshake));
  rt::ExploreResult oracle =
      rt::exploreAll(*extended.module(), *extended.program(), {});
  EXPECT_TRUE(oracle.uaf_sites.empty());
  EXPECT_EQ(extended.analysis().warningCount(), 0u);
}

TEST(AtomicModeling, SoundOnGeneratedCorpus) {
  // With modeling on, the warning set may shrink but must stay sound:
  // every oracle UAF is still warned (excluding deadlocky programs).
  corpus::GeneratorOptions gopts;
  gopts.begin_pm = 900;
  gopts.warned_pm = 600;
  corpus::ProgramGenerator gen(314, gopts);
  for (int i = 0; i < 50; ++i) {
    corpus::GeneratedProgram p = gen.next();
    Pipeline pipeline(atomicOpts());
    ASSERT_TRUE(pipeline.runSource(p.name, p.source));
    bool skipped = false;
    for (const ProcAnalysis& pa : pipeline.analysis().procs) {
      skipped |= pa.skipped_unsupported;
    }
    if (skipped) continue;
    rt::ExploreResult oracle =
        rt::exploreAll(*pipeline.module(), *pipeline.program(), {});
    if (oracle.unsupported || oracle.deadlock_schedules > 0) continue;
    for (const rt::UafEvent& e : oracle.uaf_sites) {
      bool warned = false;
      for (const auto* w : pipeline.analysis().allWarnings()) {
        warned |= w->access_loc == e.loc;
      }
      EXPECT_TRUE(warned) << p.source;
    }
  }
}

TEST(AtomicModeling, ReducesWarningsOnCorpusSlice) {
  corpus::GeneratorOptions gopts;
  gopts.begin_pm = 900;
  gopts.warned_pm = 600;
  std::size_t faithful_warnings = 0;
  std::size_t extended_warnings = 0;
  corpus::ProgramGenerator gen_a(99, gopts), gen_b(99, gopts);
  for (int i = 0; i < 60; ++i) {
    corpus::GeneratedProgram pa = gen_a.next();
    corpus::GeneratedProgram pb = gen_b.next();
    AnalysisOptions no_atomics;
    no_atomics.build.model_atomics = false;
    Pipeline faithful(no_atomics);
    ASSERT_TRUE(faithful.runSource(pa.name, pa.source));
    faithful_warnings += faithful.analysis().warningCount();
    Pipeline extended(atomicOpts());
    ASSERT_TRUE(extended.runSource(pb.name, pb.source));
    extended_warnings += extended.analysis().warningCount();
  }
  EXPECT_LT(extended_warnings, faithful_warnings);
}

// ---------------------------------------------------------------------------
// Loop unrolling
// ---------------------------------------------------------------------------

TEST(LoopUnrolling, AnalyzesBeginInLoop) {
  const char* src = R"(proc p() {
  var x = 0;
  for i in 1..3 {
    begin with (ref x) { writeln(x); }
  }
})";
  Pipeline faithful(faithfulOpts());
  ASSERT_TRUE(faithful.runSource("t", src));
  EXPECT_TRUE(faithful.analysis().procs[0].skipped_unsupported);

  Pipeline extended(unrollOpts());
  ASSERT_TRUE(extended.runSource("t", src));
  EXPECT_FALSE(extended.analysis().procs[0].skipped_unsupported);
  // One warning per unrolled task instance.
  EXPECT_EQ(extended.analysis().warningCount(), 3u);
  EXPECT_EQ(extended.diags().countWithCode("loop-unrolled"), 1u);
}

TEST(LoopUnrolling, HandshakesInLoopProvedSafe) {
  Pipeline extended(unrollOpts());
  ASSERT_TRUE(extended.runSource("t", R"(proc p() {
  var x = 0;
  var d$: sync bool;
  for i in 1..2 {
    begin with (ref x) { x += i; d$ = true; }
    d$;
  }
})"));
  EXPECT_FALSE(extended.analysis().procs[0].skipped_unsupported);
  EXPECT_EQ(extended.analysis().warningCount(), 0u);
}

TEST(LoopUnrolling, PerIterationSyncVarsStayDistinct) {
  Pipeline extended(unrollOpts());
  ASSERT_TRUE(extended.runSource("t", R"(proc p() {
  var x = 0;
  for i in 1..2 {
    var d$: sync bool;
    begin with (ref x) { x += 1; d$ = true; }
    d$;
  }
})"));
  EXPECT_EQ(extended.analysis().warningCount(), 0u);
}

TEST(LoopUnrolling, TripCountBeyondLimitStaysUnsupported) {
  Pipeline extended(unrollOpts(4));
  ASSERT_TRUE(extended.runSource("t", R"(proc p() {
  var x = 0;
  for i in 1..100 {
    begin with (ref x) { writeln(x); }
  }
})"));
  EXPECT_TRUE(extended.analysis().procs[0].skipped_unsupported);
}

TEST(LoopUnrolling, NonConstantBoundsStayUnsupported) {
  Pipeline extended(unrollOpts());
  ASSERT_TRUE(extended.runSource("t", R"(config const n = 3;
proc p() {
  var x = 0;
  for i in 1..n {
    begin with (ref x) { writeln(x); }
  }
})"));
  EXPECT_TRUE(extended.analysis().procs[0].skipped_unsupported);
}

TEST(LoopUnrolling, WhileLoopsStayUnsupported) {
  Pipeline extended(unrollOpts());
  ASSERT_TRUE(extended.runSource("t", R"(proc p() {
  var x = 0;
  var go = true;
  while (go) {
    begin with (ref x) { writeln(x); }
    go = false;
  }
})"));
  EXPECT_TRUE(extended.analysis().procs[0].skipped_unsupported);
}

TEST(LoopUnrolling, ZeroTripLoopIsNoop) {
  Pipeline extended(unrollOpts());
  ASSERT_TRUE(extended.runSource("t", R"(proc p() {
  var x = 0;
  for i in 5..2 {
    begin with (ref x) { writeln(x); }
  }
})"));
  EXPECT_FALSE(extended.analysis().procs[0].skipped_unsupported);
  EXPECT_EQ(extended.analysis().warningCount(), 0u);
}

TEST(LoopUnrolling, AgreesWithOracle) {
  const char* src = R"(proc p() {
  var x = 0;
  for i in 1..2 {
    begin with (ref x) { writeln(x); }
  }
})";
  Pipeline extended(unrollOpts());
  ASSERT_TRUE(extended.runSource("t", src));
  rt::ExploreResult oracle =
      rt::exploreAll(*extended.module(), *extended.program(), {});
  // The oracle dedupes by site: one site, dynamically confirmed.
  EXPECT_EQ(oracle.uaf_sites.size(), 1u);
  EXPECT_GE(extended.analysis().warningCount(), 1u);
}

// ---------------------------------------------------------------------------
// Deadlock reporting
// ---------------------------------------------------------------------------

TEST(DeadlockReporting, FlagsStuckSyncNode) {
  AnalysisOptions opts;
  opts.pps.report_deadlocks = true;
  Pipeline pipeline(opts);
  ASSERT_TRUE(pipeline.runSource("t", R"(proc p() {
  var x = 0;
  var never$: sync bool;
  begin with (ref x) { never$; writeln(x); }
})"));
  EXPECT_EQ(pipeline.diags().countWithCode("deadlock"), 1u);
  EXPECT_EQ(pipeline.analysis().procs[0].deadlock_points.size(), 1u);
}

TEST(DeadlockReporting, QuietOnHealthyPrograms) {
  AnalysisOptions opts;
  opts.pps.report_deadlocks = true;
  Pipeline pipeline(opts);
  ASSERT_TRUE(pipeline.runSource("t", R"(proc p() {
  var x = 0;
  var d$: sync bool;
  begin with (ref x) { x = 1; d$ = true; }
  d$;
})"));
  EXPECT_EQ(pipeline.diags().countWithCode("deadlock"), 0u);
}

TEST(DeadlockReporting, DoubleReadDeadlockFound) {
  AnalysisOptions opts;
  opts.pps.report_deadlocks = true;
  Pipeline pipeline(opts);
  ASSERT_TRUE(pipeline.runSource("t", R"(proc p() {
  var x = 0;
  var d$: sync bool;
  begin with (ref x) { x = 1; d$ = true; }
  d$;
  d$;
})"));
  EXPECT_GE(pipeline.diags().countWithCode("deadlock"), 1u);
}

TEST(DeadlockReporting, OffByDefault) {
  Pipeline pipeline;
  ASSERT_TRUE(pipeline.runSource("t", R"(proc p() {
  var x = 0;
  var never$: sync bool;
  begin with (ref x) { never$; writeln(x); }
})"));
  EXPECT_EQ(pipeline.diags().countWithCode("deadlock"), 0u);
}

}  // namespace
}  // namespace cuaf
