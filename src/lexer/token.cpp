#include "src/lexer/token.h"

#include <unordered_map>

namespace cuaf {

std::string_view tokKindName(TokKind kind) {
  switch (kind) {
    case TokKind::Eof: return "end of input";
    case TokKind::Identifier: return "identifier";
    case TokKind::IntLit: return "integer literal";
    case TokKind::RealLit: return "real literal";
    case TokKind::StringLit: return "string literal";
    case TokKind::KwProc: return "'proc'";
    case TokKind::KwVar: return "'var'";
    case TokKind::KwConst: return "'const'";
    case TokKind::KwConfig: return "'config'";
    case TokKind::KwBegin: return "'begin'";
    case TokKind::KwSync: return "'sync'";
    case TokKind::KwSingle: return "'single'";
    case TokKind::KwAtomic: return "'atomic'";
    case TokKind::KwBarrier: return "'barrier'";
    case TokKind::KwWith: return "'with'";
    case TokKind::KwRef: return "'ref'";
    case TokKind::KwIn: return "'in'";
    case TokKind::KwIf: return "'if'";
    case TokKind::KwThen: return "'then'";
    case TokKind::KwElse: return "'else'";
    case TokKind::KwWhile: return "'while'";
    case TokKind::KwDo: return "'do'";
    case TokKind::KwFor: return "'for'";
    case TokKind::KwReturn: return "'return'";
    case TokKind::KwTrue: return "'true'";
    case TokKind::KwFalse: return "'false'";
    case TokKind::KwInt: return "'int'";
    case TokKind::KwBool: return "'bool'";
    case TokKind::KwReal: return "'real'";
    case TokKind::KwString: return "'string'";
    case TokKind::KwVoid: return "'void'";
    case TokKind::LBrace: return "'{'";
    case TokKind::RBrace: return "'}'";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::Comma: return "','";
    case TokKind::Semi: return "';'";
    case TokKind::Colon: return "':'";
    case TokKind::Assign: return "'='";
    case TokKind::PlusAssign: return "'+='";
    case TokKind::MinusAssign: return "'-='";
    case TokKind::StarAssign: return "'*='";
    case TokKind::EqEq: return "'=='";
    case TokKind::NotEq: return "'!='";
    case TokKind::Less: return "'<'";
    case TokKind::LessEq: return "'<='";
    case TokKind::Greater: return "'>'";
    case TokKind::GreaterEq: return "'>='";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::Star: return "'*'";
    case TokKind::Slash: return "'/'";
    case TokKind::Percent: return "'%'";
    case TokKind::AmpAmp: return "'&&'";
    case TokKind::PipePipe: return "'||'";
    case TokKind::Bang: return "'!'";
    case TokKind::PlusPlus: return "'++'";
    case TokKind::MinusMinus: return "'--'";
    case TokKind::DotDot: return "'..'";
    case TokKind::Dot: return "'.'";
  }
  return "token";
}

TokKind keywordKind(std::string_view text) {
  static const std::unordered_map<std::string_view, TokKind> kKeywords = {
      {"proc", TokKind::KwProc},     {"var", TokKind::KwVar},
      {"const", TokKind::KwConst},   {"config", TokKind::KwConfig},
      {"begin", TokKind::KwBegin},   {"sync", TokKind::KwSync},
      {"single", TokKind::KwSingle}, {"atomic", TokKind::KwAtomic},
      {"barrier", TokKind::KwBarrier},
      {"with", TokKind::KwWith},     {"ref", TokKind::KwRef},
      {"in", TokKind::KwIn},         {"if", TokKind::KwIf},
      {"then", TokKind::KwThen},     {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},   {"do", TokKind::KwDo},
      {"for", TokKind::KwFor},       {"return", TokKind::KwReturn},
      {"true", TokKind::KwTrue},     {"false", TokKind::KwFalse},
      {"int", TokKind::KwInt},       {"bool", TokKind::KwBool},
      {"real", TokKind::KwReal},     {"string", TokKind::KwString},
      {"void", TokKind::KwVoid},
  };
  auto it = kKeywords.find(text);
  return it == kKeywords.end() ? TokKind::Identifier : it->second;
}

}  // namespace cuaf
