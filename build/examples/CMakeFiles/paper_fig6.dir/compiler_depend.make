# Empty compiler generated dependencies file for paper_fig6.
# This may be replaced when dependencies are built.
